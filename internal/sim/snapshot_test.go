package sim

import (
	"reflect"
	"strings"
	"testing"

	"subthreads/internal/isa"
	"subthreads/internal/mem"
	"subthreads/internal/tls"
	"subthreads/internal/trace"
)

// The snapshot contract is byte identity: a run resumed from a checkpoint
// must produce exactly the Result of the uninterrupted run — every cycle
// count, every protocol counter, every profiled pair. These tests pin that
// across the interesting protocol paths (violations, overflow policies,
// latch deadlocks, predictors, fault injection, the I-cache model) and pin
// the fork path against a native run of every divergent configuration.

// captureAt runs cfg with a snapshot captured at the given cycle and returns
// the snapshot after an encode/decode round trip, so every test also
// exercises the binary frame.
func captureAt(t *testing.T, cfg Config, prog *Program, cycle uint64) *Snapshot {
	t.Helper()
	var snap *Snapshot
	cfg.SnapshotAtCycle = cycle
	cfg.SnapshotSink = func(s *Snapshot) { snap = s }
	if _, err := RunE(cfg, prog); err != nil {
		t.Fatalf("capture run failed: %v", err)
	}
	if snap == nil {
		t.Fatalf("no snapshot captured at cycle %d", cycle)
	}
	decoded, err := DecodeSnapshot(snap.Encode())
	if err != nil {
		t.Fatalf("snapshot round trip: %v", err)
	}
	return decoded
}

// mustEqual fails unless two results are identical in every field.
func mustEqual(t *testing.T, name string, uninterrupted, resumed *Result) {
	t.Helper()
	if !reflect.DeepEqual(uninterrupted, resumed) {
		t.Errorf("%s: resumed result differs from uninterrupted run\nuninterrupted: %+v\nresumed:       %+v",
			name, uninterrupted, resumed)
	}
}

// violationProgram has real cross-epoch dependences, so post-snapshot
// execution exercises squashes, rewinds, and profiling.
func violationProgram() *Program {
	a, b := mem.Addr(0x11000), mem.Addr(0x12000)
	var units []Unit
	for i := 0; i < 6; i++ {
		tb := trace.NewBuilder()
		tb.ALU(3000)
		tb.Load(isa.PC(2), a)
		tb.ALU(2000)
		tb.Store(isa.PC(1), a)
		tb.ALU(1500)
		tb.Load(isa.PC(4), b)
		tb.Store(isa.PC(3), b)
		tb.ALU(1500)
		units = append(units, Unit{Trace: tb.Finish()})
	}
	return &Program{Units: units}
}

func TestSnapshotRestoreByteIdentity(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() Config
		prog func() *Program
	}{
		{"violations", testConfig, violationProgram},
		{"all-or-nothing", func() Config {
			cfg := testConfig()
			cfg.SubthreadSpacing = 0
			cfg.TLS.SubthreadsPerEpoch = 1
			return cfg
		}, violationProgram},
		{"overflow-squash", func() Config {
			cfg := testConfig()
			cfg.TLS.OverflowPolicy = tls.OverflowSquash
			cfg.TLS.L2Sets = 1
			cfg.TLS.L2Ways = 2
			cfg.TLS.VictimEntries = 2
			return cfg
		}, func() *Program {
			b := trace.NewBuilder()
			for i := 0; i < 64; i++ {
				b.Store(1, mem.Addr(0x20000+i*mem.LineSize))
				b.ALU(50)
			}
			return &Program{Units: []Unit{{Trace: aluTrace(40000)}, {Trace: b.Finish()}}}
		}},
		{"overflow-stall", func() Config {
			cfg := testConfig()
			cfg.TLS.L2Sets = 1
			cfg.TLS.L2Ways = 2
			cfg.TLS.VictimEntries = 2
			return cfg
		}, func() *Program {
			b := trace.NewBuilder()
			for i := 0; i < 64; i++ {
				b.Store(1, mem.Addr(0x30000+i*mem.LineSize))
				b.ALU(50)
			}
			return &Program{Units: []Unit{{Trace: aluTrace(40000)}, {Trace: b.Finish()}}}
		}},
		{"latch-deadlock", func() Config {
			cfg := testConfig()
			cfg.LatchDeadlockCycles = 500
			return cfg
		}, func() *Program {
			la, lb := mem.Addr(0x9000), mem.Addr(0x9100)
			mk := func(first, second mem.Addr) *trace.Trace {
				b := trace.NewBuilder()
				b.ALU(100)
				b.LatchAcquire(1, first)
				b.ALU(400)
				b.LatchAcquire(2, second)
				b.ALU(400)
				b.LatchRelease(3, second)
				b.LatchRelease(4, first)
				b.ALU(100)
				return b.Finish()
			}
			return &Program{Units: []Unit{{Trace: mk(lb, la)}, {Trace: mk(la, lb)}}}
		}},
		{"predictor", func() Config {
			cfg := testConfig()
			cfg.UsePredictor = true
			cfg.SubthreadSpacing = 0
			cfg.TLS.SubthreadsPerEpoch = 1
			return cfg
		}, violationProgram},
		{"spawn-predictor", func() Config {
			cfg := testConfig()
			cfg.Spawn = SpawnPredictor
			cfg.TLS.SubthreadsPerEpoch = 2
			return cfg
		}, violationProgram},
		{"icache-mlp", func() Config {
			cfg := testConfig()
			cfg.Mem.ModelICache = true
			cfg.Mem.L1ISets = 8
			cfg.Mem.L1IWays = 4
			cfg.NonBlockingLoads = true
			return cfg
		}, func() *Program {
			b := trace.NewBuilder()
			for i := 0; i < 300; i++ {
				b.Branch(isa.PC(i%40+1), true)
				b.Load(1, mem.Addr(0x40000+i*mem.LineSize))
				b.ALU(60)
			}
			return &Program{Units: []Unit{{Trace: b.Finish()}, {Trace: aluTrace(9000)}}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := RunE(tc.cfg(), tc.prog())
			if err != nil {
				t.Fatalf("uninterrupted run: %v", err)
			}
			for _, frac := range []uint64{4, 2} {
				cycle := want.Cycles / frac
				if cycle == 0 {
					continue
				}
				snap := captureAt(t, tc.cfg(), tc.prog(), cycle)
				got, err := ResumeE(tc.cfg(), tc.prog(), snap)
				if err != nil {
					t.Fatalf("resume at cycle %d: %v", cycle, err)
				}
				mustEqual(t, tc.name, want, got)
			}
		})
	}
}

func TestSnapshotRestoreWithInjection(t *testing.T) {
	faults := func() []Fault {
		return []Fault{
			{Cycle: 500, Kind: FaultSquash, CPU: 1, Ctx: 3},
			{Cycle: 900, Kind: FaultOverflow, CPU: 2},
			{Cycle: 1300, Kind: FaultSquash, CPU: 0, Ctx: 1},
			{Cycle: 4200, Kind: FaultSquash, CPU: 2, Ctx: 0},
		}
	}
	mkCfg := func() Config {
		cfg := testConfig()
		cfg.Inject = &stubInjector{faults: faults(), latchEvery: 64, latchDelay: 4}
		return cfg
	}
	prog := violationProgram()
	want, err := RunE(mkCfg(), prog)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	if want.InjectedFaults == 0 {
		t.Fatal("scenario broken: no faults delivered")
	}
	// Capture mid-schedule so the resume must fast-forward a fresh injector
	// past the already-delivered faults.
	snap := captureAt(t, mkCfg(), prog, 1000)
	got, err := ResumeE(mkCfg(), prog, snap)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	mustEqual(t, "injection", want, got)
}

// forkProgram is a sweep-shaped program: a leading barrier prefix that warms
// the caches and produces values, then speculative iteration units with real
// dependences on the prefix's data and on each other.
func forkProgram() *Program {
	warm := trace.NewBuilder()
	for i := 0; i < 200; i++ {
		warm.Store(1, mem.Addr(0x50000+i*mem.LineSize))
		warm.ALU(40)
	}
	warm.ALU(5000)
	units := []Unit{{Trace: warm.Finish(), Barrier: true}}
	a := mem.Addr(0x50000)
	for i := 0; i < 5; i++ {
		b := trace.NewBuilder()
		b.Load(2, a) // reads the prefix's data
		b.ALU(4000)
		b.Load(4, mem.Addr(0x60000))
		b.ALU(2000)
		b.Store(3, mem.Addr(0x60000))
		b.ALU(2000)
		units = append(units, Unit{Trace: b.Finish()})
	}
	return &Program{Units: units}
}

// capturePrefix captures the prefix-boundary snapshot under cfg.
func capturePrefix(t *testing.T, cfg Config, prog *Program) *Snapshot {
	t.Helper()
	var snap *Snapshot
	cfg.SnapshotAtPrefix = true
	cfg.SnapshotSink = func(s *Snapshot) { snap = s }
	if _, err := RunE(cfg, prog); err != nil {
		t.Fatalf("prefix capture run failed: %v", err)
	}
	if snap == nil {
		t.Fatal("no prefix snapshot captured")
	}
	decoded, err := DecodeSnapshot(snap.Encode())
	if err != nil {
		t.Fatalf("snapshot round trip: %v", err)
	}
	return decoded
}

func TestSnapshotForkByteIdentity(t *testing.T) {
	prog := forkProgram()
	base := testConfig()
	snap := capturePrefix(t, base, prog)
	if !snap.Forkable {
		t.Fatal("prefix snapshot not forkable")
	}
	if snap.Cycle == 0 {
		t.Fatal("prefix snapshot captured at cycle 0")
	}

	variants := map[string]func(Config) Config{
		"same-config":     func(c Config) Config { return c },
		"spacing-1000":    func(c Config) Config { c.SubthreadSpacing = 1000; return c },
		"all-or-nothing":  func(c Config) Config { c.SubthreadSpacing = 0; c.TLS.SubthreadsPerEpoch = 1; return c },
		"adaptive":        func(c Config) Config { c.Spawn = SpawnAdaptive; c.TLS.SubthreadsPerEpoch = 4; return c },
		"spawn-predictor": func(c Config) Config { c.Spawn = SpawnPredictor; c.TLS.SubthreadsPerEpoch = 2; return c },
		"use-predictor":   func(c Config) Config { c.UsePredictor = true; return c },
		"overflow-squash": func(c Config) Config {
			c.TLS.OverflowPolicy = tls.OverflowSquash
			c.TLS.VictimEntries = 2
			return c
		},
		"no-start-table":    func(c Config) Config { c.TLS.StartTable = false; return c },
		"violation-penalty": func(c Config) Config { c.ViolationPenalty = 500; return c },
		"reg-backup":        func(c Config) Config { c.RegBackupPenalty = 200; return c },
		"l1-tracking":       func(c Config) Config { c.L1SubthreadTracking = true; return c },
		"speculation-off":   func(c Config) Config { c.TLS.SpeculationOff = true; return c },
	}
	for name, vary := range variants {
		t.Run(name, func(t *testing.T) {
			cfg := vary(testConfig())
			want, err := RunE(cfg, forkProgram())
			if err != nil {
				t.Fatalf("uninterrupted run: %v", err)
			}
			got, err := ResumeE(cfg, forkProgram(), snap)
			if err != nil {
				t.Fatalf("fork: %v", err)
			}
			mustEqual(t, name, want, got)
		})
	}
}

func TestSnapshotForkRefusals(t *testing.T) {
	prog := forkProgram()
	base := testConfig()
	snap := capturePrefix(t, base, prog)

	t.Run("prefix-divergent-config", func(t *testing.T) {
		cfg := testConfig()
		cfg.CommitPenalty++ // prefix-invariant parameter: both digests differ
		if _, err := ResumeE(cfg, prog, snap); err == nil {
			t.Error("fork across a prefix-divergent config did not error")
		}
	})
	t.Run("injected-fork", func(t *testing.T) {
		cfg := testConfig()
		cfg.SubthreadSpacing = 1000 // force the fork path, not full restore
		cfg.Inject = &stubInjector{}
		if _, err := ResumeE(cfg, prog, snap); err == nil {
			t.Error("fork into a fault-injected run did not error")
		}
	})
	t.Run("oracle", func(t *testing.T) {
		cfg := testConfig()
		cfg.Oracle = nopOracle{}
		if _, err := ResumeE(cfg, prog, snap); err == nil {
			t.Error("resume with an oracle did not error")
		}
	})
	t.Run("wrong-program", func(t *testing.T) {
		other := violationProgram()
		if _, err := ResumeE(testConfig(), other, snap); err == nil {
			t.Error("resume under a different program did not error")
		}
	})
	t.Run("unforkable-snapshot", func(t *testing.T) {
		// A mid-run snapshot with live speculation must refuse to fork.
		vp := violationProgram()
		mid := captureAt(t, testConfig(), vp, 4000)
		if mid.Forkable {
			t.Fatal("mid-speculation snapshot claims to be forkable")
		}
		cfg := testConfig()
		cfg.SubthreadSpacing = 1000
		if _, err := ResumeE(cfg, vp, mid); err == nil {
			t.Error("fork from an unforkable snapshot did not error")
		}
	})
}

type nopOracle struct{}

func (nopOracle) OnStore(uint64, int, mem.Addr, uint64) {}
func (nopOracle) OnSquash(uint64, int)                  {}
func (nopOracle) OnCommit(uint64)                       {}

func TestSnapshotCorruptionIsAnErrorNeverAPanic(t *testing.T) {
	prog := forkProgram()
	snap := capturePrefix(t, testConfig(), prog)
	enc := snap.Encode()

	// Every truncation of the frame must decode to an error (or, for
	// truncations that only cut the payload, fail at resume) — never panic
	// and never silently succeed.
	step := len(enc)/97 + 1
	for n := 0; n < len(enc); n += step {
		s, err := DecodeSnapshot(enc[:n])
		if err != nil {
			continue
		}
		if _, err := ResumeE(testConfig(), prog, s); err == nil {
			t.Fatalf("truncation to %d/%d bytes resumed successfully", n, len(enc))
		}
	}

	// Header corruption: wrong magic, wrong version.
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xff
	if _, err := DecodeSnapshot(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("corrupt magic: err = %v", err)
	}
	bad = append([]byte(nil), enc...)
	bad[len(snapMagic)] = 99
	if _, err := DecodeSnapshot(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("corrupt version: err = %v", err)
	}
}

func TestSnapshotNotCapturedPastRunEnd(t *testing.T) {
	cfg := testConfig()
	prog := &Program{Units: []Unit{{Trace: aluTrace(4000)}}}
	called := false
	cfg.SnapshotAtCycle = 1 << 40
	cfg.SnapshotSink = func(*Snapshot) { called = true }
	if _, err := RunE(cfg, prog); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("sink called for a capture cycle beyond the run's end")
	}
}

func TestResumedRunNeverRecaptures(t *testing.T) {
	prog := violationProgram()
	cfg := testConfig()
	snap := captureAt(t, cfg, prog, 2000)
	resumeCfg := testConfig()
	captures := 0
	resumeCfg.SnapshotAtCycle = 4000 // would fire post-resume if not suppressed
	resumeCfg.SnapshotSink = func(*Snapshot) { captures++ }
	if _, err := ResumeE(resumeCfg, prog, snap); err != nil {
		t.Fatal(err)
	}
	if captures != 0 {
		t.Errorf("resumed run captured %d snapshots", captures)
	}
}
