package sim

import (
	"errors"
	"testing"

	"subthreads/internal/mem"
	"subthreads/internal/tls"
	"subthreads/internal/trace"
)

// Robustness-path tests: fault injection, the forward-progress watchdog, the
// cycle budget, and structured RunE errors. A local stub injector is used
// instead of internal/inject (which imports sim) so these stay in-package.

type stubInjector struct {
	faults []Fault
	next   int

	// Latch grants are delayed for latchDelay cycles out of every
	// latchEvery (0 = never).
	latchEvery uint64
	latchDelay uint64
}

func (s *stubInjector) Next(now uint64) (Fault, bool) {
	if s.next < len(s.faults) && s.faults[s.next].Cycle <= now {
		f := s.faults[s.next]
		s.next++
		return f, true
	}
	return Fault{}, false
}

func (s *stubInjector) LatchDelayed(now uint64) bool {
	return s.latchEvery > 0 && now%s.latchEvery < s.latchDelay
}

// latchTrace acquires and releases one latch around a slab of compute.
func latchTrace(l mem.Addr, work uint32) *trace.Trace {
	b := trace.NewBuilder()
	b.ALU(100)
	b.LatchAcquire(1, l)
	b.ALU(work)
	b.LatchRelease(2, l)
	b.ALU(100)
	return b.Finish()
}

func TestWatchdogConvertsLivelockToError(t *testing.T) {
	cfg := testConfig()
	cfg.WatchdogCycles = 2000
	// Every latch grant is refused forever: the program can never commit.
	cfg.Inject = &stubInjector{latchEvery: 1, latchDelay: 1}
	res, err := RunE(cfg, &Program{Units: []Unit{{Trace: latchTrace(0x9000, 1000)}}})
	if err == nil {
		t.Fatal("livelocked run returned no error")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error is %T, want *RunError", err)
	}
	if re.Kind != "watchdog" {
		t.Errorf("RunError.Kind = %q, want %q", re.Kind, "watchdog")
	}
	if re.Cycle < cfg.WatchdogCycles {
		t.Errorf("tripped at cycle %d, before the %d-cycle watchdog window", re.Cycle, cfg.WatchdogCycles)
	}
	if res == nil || res.Cycles == 0 {
		t.Error("no partial result alongside the watchdog error")
	}
}

func TestMaxCyclesBudgetIsEnforced(t *testing.T) {
	cfg := testConfig()
	cfg.MaxCycles = 1500
	cfg.Inject = &stubInjector{latchEvery: 1, latchDelay: 1}
	_, err := RunE(cfg, &Program{Units: []Unit{{Trace: latchTrace(0x9100, 1000)}}})
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if re.Kind != "max-cycles" {
		t.Errorf("RunError.Kind = %q, want %q", re.Kind, "max-cycles")
	}
}

func TestRunPanicsWithRunError(t *testing.T) {
	cfg := testConfig()
	cfg.MaxCycles = 1000
	cfg.Inject = &stubInjector{latchEvery: 1, latchDelay: 1}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not panic on a structured failure")
		}
		if _, ok := r.(*RunError); !ok {
			t.Fatalf("Run panicked with %T, want *RunError", r)
		}
	}()
	Run(cfg, &Program{Units: []Unit{{Trace: latchTrace(0x9200, 1000)}}})
}

func TestInjectedSquashesRunToCompletion(t *testing.T) {
	cfg := testConfig()
	cfg.Paranoid = true
	var faults []Fault
	for i := 0; i < 10; i++ {
		faults = append(faults, Fault{
			Cycle: uint64(500 + i*700),
			Kind:  FaultSquash,
			CPU:   i,
			Ctx:   i,
		})
	}
	cfg.Inject = &stubInjector{faults: faults}
	var units []Unit
	for i := 0; i < 8; i++ {
		units = append(units, Unit{Trace: aluTrace(8000)})
	}
	res := run(t, cfg, units...)
	if res.InjectedFaults == 0 {
		t.Fatal("no faults delivered")
	}
	if res.TLS.Commits != 8 {
		t.Errorf("Commits = %d, want 8 — injected squashes broke convergence", res.TLS.Commits)
	}
	if res.Breakdown[Failed] == 0 {
		t.Error("injected squashes produced no failed-speculation cycles")
	}
}

func TestInjectedOverflowUnderSquashPolicy(t *testing.T) {
	cfg := testConfig()
	cfg.Paranoid = true
	cfg.TLS.OverflowPolicy = tls.OverflowSquash
	cfg.Inject = &stubInjector{faults: []Fault{
		{Cycle: 600, Kind: FaultOverflow, CPU: 1},
		{Cycle: 1400, Kind: FaultOverflow, CPU: 2},
	}}
	var units []Unit
	for i := 0; i < 6; i++ {
		units = append(units, Unit{Trace: aluTrace(6000)})
	}
	res := run(t, cfg, units...)
	if res.InjectedFaults != 2 {
		t.Errorf("InjectedFaults = %d, want 2", res.InjectedFaults)
	}
	if res.TLS.Commits != 6 {
		t.Errorf("Commits = %d, want 6", res.TLS.Commits)
	}
}

func TestInjectedOverflowUnderStallPolicy(t *testing.T) {
	cfg := testConfig() // default policy: OverflowStall
	cfg.Paranoid = true
	cfg.Inject = &stubInjector{faults: []Fault{
		{Cycle: 600, Kind: FaultOverflow, CPU: 1},
		{Cycle: 1400, Kind: FaultOverflow, CPU: 2},
	}}
	var units []Unit
	for i := 0; i < 6; i++ {
		units = append(units, Unit{Trace: aluTrace(6000)})
	}
	res := run(t, cfg, units...)
	if res.OverflowWaits == 0 {
		t.Error("injected overflow under the stall policy produced no overflow waits")
	}
	if res.TLS.Commits != 6 {
		t.Errorf("Commits = %d, want 6", res.TLS.Commits)
	}
}

func TestDelayedLatchGrantsStillConverge(t *testing.T) {
	cfg := testConfig()
	cfg.Paranoid = true
	cfg.Inject = &stubInjector{latchEvery: 64, latchDelay: 8}
	l := mem.Addr(0x9300)
	res := run(t, cfg, Unit{Trace: latchTrace(l, 20000)}, Unit{Trace: latchTrace(l, 20000)})
	if res.TLS.Commits != 2 {
		t.Fatalf("Commits = %d; delayed latch grants broke the run", res.TLS.Commits)
	}
	if res.Breakdown[Sync] == 0 {
		t.Error("no sync stalls despite delayed latch grants")
	}
}

func TestInjectionIsDeterministic(t *testing.T) {
	mk := func() (Config, []Unit) {
		cfg := testConfig()
		cfg.Inject = &stubInjector{faults: []Fault{
			{Cycle: 500, Kind: FaultSquash, CPU: 1, Ctx: 3},
			{Cycle: 900, Kind: FaultOverflow, CPU: 2},
			{Cycle: 1300, Kind: FaultSquash, CPU: 0, Ctx: 1},
		}}
		var units []Unit
		for i := 0; i < 6; i++ {
			units = append(units, Unit{Trace: aluTrace(7000)})
		}
		return cfg, units
	}
	cfgA, unitsA := mk()
	cfgB, unitsB := mk()
	a := run(t, cfgA, unitsA...)
	b := run(t, cfgB, unitsB...)
	if a.Cycles != b.Cycles || a.InjectedFaults != b.InjectedFaults ||
		a.RewoundInstrs != b.RewoundInstrs || a.Breakdown != b.Breakdown {
		t.Errorf("identical injected runs diverged: %d/%d cycles, %d/%d faults",
			a.Cycles, b.Cycles, a.InjectedFaults, b.InjectedFaults)
	}
}
