package sim

import (
	"fmt"

	"subthreads/internal/cache"
	"subthreads/internal/cpu"
	"subthreads/internal/isa"
	"subthreads/internal/mem"
	"subthreads/internal/predict"
	"subthreads/internal/profile"
	"subthreads/internal/telemetry"
	"subthreads/internal/tls"
	"subthreads/internal/trace"
)

// core is the per-CPU state machine.
type core struct {
	id     int
	gshare *cpu.GShare
	l1     *cache.Cache
	elt    *profile.ExposedLoadTable

	// Current work.
	unit   int // index into program units; -1 when idle
	epoch  *tls.Epoch
	cursor *trace.Cursor

	// Sub-thread checkpoints: checkpoints[ctx] is the trace position the
	// context restarts from; ctxCycles[ctx] accrues cycles for failed-
	// speculation reclassification.
	checkpoints []trace.Pos
	ctxCycles   []Breakdown
	nextSpawnAt uint64

	// l1Flags marks lines this epoch has already notified the L2 about
	// (first speculative load); l1Mod maps lines it speculatively wrote
	// to the earliest writing sub-thread context (invalidated from L1 on
	// a violation, §2.2 — all of them without L1SubthreadTracking, only
	// the rewound contexts' lines with it). Both are direct-addressed,
	// generation-stamped tables so the per-epoch reset is O(1) and the
	// per-access probe allocation-free.
	l1Flags *lineSet
	l1Mod   *lineModMap
	modKeep []modEntry // violation-path scratch (L1SubthreadTracking)

	// spacing is the effective sub-thread spacing for this epoch
	// (per-epoch under SpawnAdaptive).
	spacing uint64

	// overflowWait is set when speculative state could not be buffered:
	// the epoch stalls until an earlier epoch commits (§2.1).
	overflowWait    bool
	overflowCommits uint64

	// Outstanding load miss (NonBlockingLoads): execution may run ahead
	// until the reorder buffer fills, then stalls for the remainder.
	missUntil  uint64
	missBudget int

	ifetch *ifetcher // nil unless MemParams.ModelICache

	stallUntil uint64
	stallCat   Category

	done     bool // trace finished, waiting for homefree token
	syncing  bool // waiting on a latch or predictor synchronization
	syncPC   isa.PC
	syncAddr mem.Addr
	predSync bool // current sync is predictor-driven
}

// machine is one run of the simulator.
type machine struct {
	cfg    Config
	prog   *Program
	engine *tls.Engine
	cores  []*core

	l2Banks   *cache.Banks
	memBanks  *cache.Banks
	pred      *predict.Predictor
	spawnPred *predict.Predictor // trains sub-thread placement (SpawnPredictor)
	pairs     *profile.PairList

	iTouched map[mem.Addr]bool // code lines ever fetched (ModelICache)

	cycle       uint64
	nextUnit    int
	barrierLive bool // a barrier unit has started and not committed
	committed   int  // units fully committed

	// tel receives protocol events; nil when telemetry is disabled.
	// lastToken tracks homefree-token passes (the epoch that most recently
	// became oldest).
	tel       telemetry.Emitter
	lastToken *tls.Epoch

	// err records a mid-step paranoid failure (e.g. a forward rewind)
	// for the run loop to surface as a RunError.
	err error

	// Forward-progress watchdog state. These live on the machine (not as
	// run-loop locals) so a snapshot carries them and a restored run's
	// watchdog decisions are cycle-identical to the uninterrupted run's.
	wdLastCommitted int
	wdLastCommitAt  uint64
	wdSyncRun       bool
	wdAllSyncSince  uint64

	// snapped is set once a snapshot has been captured (or the machine was
	// itself restored from one), so a run emits at most one snapshot and a
	// resumed run never re-captures.
	snapped bool
	// snapLeading counts the program's leading barrier units — the shared
	// prefix a SnapshotAtPrefix capture keys off.
	snapLeading int

	res Result
}

// Run executes the program on the configured machine and returns the
// measured result. A structured failure (audit, watchdog, cycle budget —
// see RunE) panics with the *RunError; normal runs never fail.
func Run(cfg Config, prog *Program) *Result {
	res, err := RunE(cfg, prog)
	if err != nil {
		panic(err)
	}
	return res
}

// RunE executes the program and returns the measured result, or a *RunError
// when paranoid auditing, the forward-progress watchdog, or the cycle budget
// abandons the run. The partial result is returned alongside the error.
func RunE(cfg Config, prog *Program) (*Result, error) {
	m := newMachine(cfg, prog)
	err := m.run()
	res := m.finish()
	m.release()
	return res, err
}

// release returns the per-core line tables' pages to the shared pools so the
// next Run (possibly on another goroutine) reuses them instead of growing the
// heap. The machine must not be used afterwards.
func (m *machine) release() {
	for _, c := range m.cores {
		c.l1Flags.release()
		c.l1Mod.release()
	}
}

func newMachine(cfg Config, prog *Program) *machine {
	if cfg.CPUs < 1 {
		panic("sim: CPUs < 1")
	}
	tcfg := cfg.TLS
	tcfg.CPUs = cfg.CPUs
	tcfg.Paranoid = tcfg.Paranoid || cfg.Paranoid
	m := &machine{
		cfg:      cfg,
		prog:     prog,
		engine:   tls.NewEngine(tcfg),
		l2Banks:  cache.NewBanks(cfg.Mem.L2Banks, cfg.Mem.L2BankOccupancy),
		memBanks: cache.NewBanks(1, cfg.Mem.MemOccupancy),
		pairs:    profile.NewPairList(cfg.PairListEntries),
		iTouched: make(map[mem.Addr]bool),
		tel:      cfg.Telemetry,
	}
	if cfg.UsePredictor {
		m.pred = predict.New()
	}
	if cfg.Spawn == SpawnPredictor {
		m.spawnPred = predict.New()
	}
	for i := 0; i < cfg.CPUs; i++ {
		m.cores = append(m.cores, &core{
			id:     i,
			gshare: cpu.NewGShare(cfg.CPU.BranchTableBits, cfg.CPU.BranchHistoryBits),
			l1: cache.New(cache.Config{
				Name: fmt.Sprintf("L1d-%d", i),
				Sets: cfg.Mem.L1Sets,
				Ways: cfg.Mem.L1Ways,
			}),
			elt:     profile.NewExposedLoadTable(cfg.ExposedTableEntries),
			unit:    -1,
			l1Flags: newLineSet(),
			l1Mod:   newLineModMap(),
		})
		if cfg.Mem.ModelICache {
			m.cores[i].ifetch = newIFetcher(cfg.Mem)
		}
	}
	m.snapLeading = leadingBarriers(prog)
	return m
}

// coreOf maps a live epoch back to the core running it: an epoch's Slot IS
// its CPU (at most one live epoch per slot), so no lookup table is needed.
func (m *machine) coreOf(e *tls.Epoch) *core {
	if e.Slot < 0 || e.Slot >= len(m.cores) {
		return nil
	}
	if c := m.cores[e.Slot]; c.epoch == e {
		return c
	}
	return nil
}

func (m *machine) run() error {
	deadlock := m.cfg.LatchDeadlockCycles
	if deadlock == 0 {
		deadlock = 50000
	}
	for m.committed < len(m.prog.Units) {
		// Snapshot capture sits at the very top of the cycle, before the
		// inject drain and before any core steps: everything that happens
		// at cycle N is then replayed identically by a resumed run. The
		// nil test keeps the hot path at one pointer compare.
		if m.cfg.SnapshotSink != nil && !m.snapped && m.wantSnapshot() {
			m.snapped = true
			m.captureSnapshot()
		}
		if m.cfg.Inject != nil {
			for {
				f, ok := m.cfg.Inject.Next(m.cycle)
				if !ok {
					break
				}
				m.injectFault(f)
			}
		}
		for _, c := range m.cores {
			m.step(c)
		}
		m.cycle++
		if m.err != nil {
			return m.abandon("audit", m.err)
		}
		if m.cfg.Paranoid {
			if err := m.engine.AuditErr(); err != nil {
				return m.abandon("audit", err)
			}
		}

		// Forward-progress watchdog: livelock (nothing commits for too
		// long) becomes a structured error instead of a hang.
		if m.committed != m.wdLastCommitted {
			m.wdLastCommitted = m.committed
			m.wdLastCommitAt = m.cycle
		} else if wd := m.cfg.WatchdogCycles; wd > 0 && m.cycle-m.wdLastCommitAt > wd {
			return m.abandon("watchdog", fmt.Errorf(
				"no unit committed for %d cycles (%d/%d committed)",
				wd, m.committed, len(m.prog.Units)))
		}
		if mc := m.cfg.MaxCycles; mc > 0 && m.cycle > mc {
			return m.abandon("max-cycles", fmt.Errorf(
				"cycle budget %d exhausted (%d/%d units committed)",
				mc, m.committed, len(m.prog.Units)))
		}
		// Cancellation poll: the serving layer's deadline/disconnect
		// signal, checked on the same loop as the watchdog but only every
		// CancelPollCycles cycles so the check stays off the hot path.
		if m.cfg.Cancel != nil && m.cycle%CancelPollCycles == 0 {
			if cerr := m.cfg.Cancel(); cerr != nil {
				return m.abandon("cancelled", cerr)
			}
		}

		// Latch-deadlock watchdog: if every core with work is stuck in
		// a synchronization wait for too long, break the cycle by
		// squashing the youngest epoch that holds a latch.
		busy, stuck := 0, 0
		for _, c := range m.cores {
			if c.epoch != nil && !c.done {
				busy++
				if c.syncing && !c.predSync {
					stuck++
				}
			}
		}
		if busy > 0 && busy == stuck {
			if !m.wdSyncRun {
				m.wdSyncRun = true
				m.wdAllSyncSince = m.cycle
			} else if m.cycle-m.wdAllSyncSince > deadlock {
				m.breakDeadlock()
				m.wdSyncRun = false
			}
		} else {
			m.wdSyncRun = false
		}
	}
	m.res.Cycles = m.cycle
	if m.cfg.Paranoid {
		if total := m.res.Breakdown.Total(); total != m.cycle*uint64(m.cfg.CPUs) {
			return m.abandon("audit", fmt.Errorf(
				"cycle accounting imbalance: breakdown %d != %d cycles x %d CPUs",
				total, m.cycle, m.cfg.CPUs))
		}
	}
	return nil
}

// abandon records the failure telemetry and wraps the cause in a RunError.
func (m *machine) abandon(kind string, err error) error {
	m.res.Cycles = m.cycle
	if m.tel != nil {
		k := telemetry.WatchdogTrip
		if kind == "audit" {
			k = telemetry.AuditFail
		}
		m.tel.Emit(telemetry.Event{Cycle: m.cycle, Kind: k})
	}
	return &RunError{Kind: kind, Cycle: m.cycle, Err: err}
}

// injectFault delivers one scheduled fault: the CPU/Ctx hints are reduced
// over the currently-live speculative (non-oldest) epochs, so injection
// never touches the homefree epoch — whose state is architecturally
// committed and must not be rewound.
func (m *machine) injectFault(f Fault) {
	var victims []*core
	for _, c := range m.cores {
		if c.epoch != nil && m.engine.Speculative(c.epoch) {
			victims = append(victims, c)
		}
	}
	if len(victims) == 0 {
		return
	}
	v := victims[f.CPU%len(victims)]
	ctx := f.Ctx % (v.epoch.CurCtx + 1)
	m.res.InjectedFaults++
	if m.tel != nil {
		k := telemetry.InjectSquash
		if f.Kind == FaultOverflow {
			k = telemetry.InjectOverflow
		}
		m.tel.Emit(telemetry.Event{
			Cycle: m.cycle, CPU: v.id, Kind: k,
			Epoch: v.epoch.ID, Ctx: ctx,
		})
	}
	switch f.Kind {
	case FaultSquash:
		m.applySquashes(m.engine.ForceSquash(v.epoch, ctx, tls.Secondary))
	case FaultOverflow:
		if m.engine.Config().OverflowPolicy == tls.OverflowSquash {
			m.applySquashes(m.engine.ForceSquash(v.epoch, ctx, tls.Overflow))
		} else if !v.overflowWait {
			// Synthetic buffer exhaustion: stall exactly as a
			// refused speculative insert would (§2.1).
			m.res.OverflowWaits++
			v.overflowWait = true
			v.overflowCommits = m.engine.Stats.Commits
		}
	}
}

// emitHomefree reports homefree-token passes: whenever the oldest live epoch
// changes (an epoch starts alone, or a commit hands the token on), the new
// holder gets a HomefreeToken event.
func (m *machine) emitHomefree() {
	if m.tel == nil {
		return
	}
	e := m.engine.Oldest()
	if e == nil || e == m.lastToken {
		return
	}
	m.lastToken = e
	c := m.coreOf(e)
	if c == nil {
		return
	}
	m.tel.Emit(telemetry.Event{
		Cycle: m.cycle, CPU: c.id, Kind: telemetry.HomefreeToken,
		Epoch: e.ID, Ctx: e.CurCtx,
	})
}

// breakDeadlock squashes the youngest live epoch holding a latch.
func (m *machine) breakDeadlock() {
	var victim *core
	for _, c := range m.cores {
		if c.epoch == nil {
			continue
		}
		if victim == nil || c.epoch.ID > victim.epoch.ID {
			victim = c
		}
	}
	if victim == nil {
		return
	}
	m.res.LatchDeadlockBreaks++
	if m.tel != nil {
		m.tel.Emit(telemetry.Event{
			Cycle: m.cycle, CPU: victim.id, Kind: telemetry.DeadlockBreak,
			Epoch: victim.epoch.ID, Ctx: victim.epoch.CurCtx,
		})
	}
	sqs := m.engine.ForceSquash(victim.epoch, 0, tls.Secondary)
	m.applySquashes(sqs)
}

// accrue charges one cycle to the core in the given category, recording it
// against the current sub-thread context for later failed-speculation
// reclassification.
func (m *machine) accrue(c *core, cat Category) {
	m.res.Breakdown[cat]++
	if c.epoch != nil && int(c.epoch.CurCtx) < len(c.ctxCycles) {
		c.ctxCycles[c.epoch.CurCtx][cat]++
	}
}

// step advances one core by one cycle.
func (m *machine) step(c *core) {
	if c.epoch == nil {
		if !m.tryStart(c) {
			m.res.Breakdown[Idle]++
			return
		}
	}
	if m.cycle < c.stallUntil {
		m.accrue(c, c.stallCat)
		return
	}
	if c.overflowWait {
		// Buffer-overflow stall (§2.1): resume once an earlier epoch
		// has committed (freeing ways) or we hold the homefree token.
		if m.engine.Oldest() == c.epoch || m.engine.Stats.Commits > c.overflowCommits {
			c.overflowWait = false
			if m.tel != nil {
				m.tel.Emit(telemetry.Event{
					Cycle: m.cycle, CPU: c.id, Kind: telemetry.OverflowResume,
					Epoch: c.epoch.ID, Ctx: c.epoch.CurCtx,
				})
			}
		} else {
			m.accrue(c, Sync)
			return
		}
	}
	if c.syncing {
		m.retrySync(c)
		return
	}
	if c.done {
		m.finishEpoch(c)
		return
	}
	// Barrier units execute only when non-speculative.
	if m.prog.Units[c.unit].Barrier && m.engine.Oldest() != c.epoch {
		m.accrue(c, Idle)
		return
	}
	m.execute(c)
}

// tryStart assigns the next program unit to a free core, respecting barrier
// ordering.
func (m *machine) tryStart(c *core) bool {
	if m.nextUnit >= len(m.prog.Units) || m.barrierLive {
		return false
	}
	u := m.prog.Units[m.nextUnit]
	c.unit = m.nextUnit
	m.nextUnit++
	if u.Barrier {
		m.barrierLive = true
	}
	c.epoch = m.engine.StartEpoch(uint64(c.unit), c.id)
	if c.cursor == nil {
		c.cursor = trace.NewCursor(u.Trace)
	} else {
		c.cursor.Reset(u.Trace)
	}
	c.checkpoints = append(c.checkpoints[:0], c.cursor.Pos())
	c.ctxCycles = append(c.ctxCycles[:0], Breakdown{})
	c.spacing = m.effectiveSpacing(u.Trace)
	c.nextSpawnAt = c.spacing
	c.done = false
	c.syncing = false
	c.overflowWait = false
	c.missUntil = 0
	c.l1Flags.clear()
	c.l1Mod.clear()
	c.elt.Reset()
	if !u.Barrier {
		m.res.EpochCount++
	}
	if m.tel != nil {
		m.tel.Emit(telemetry.Event{
			Cycle: m.cycle, CPU: c.id, Kind: telemetry.EpochStart,
			Epoch: c.epoch.ID, Barrier: u.Barrier,
		})
		m.emitHomefree()
	}
	return true
}

// finishEpoch handles a core whose epoch has consumed its whole trace: it
// waits for the homefree token, then commits.
func (m *machine) finishEpoch(c *core) {
	if m.engine.Oldest() != c.epoch {
		m.accrue(c, Idle) // waiting to commit
		return
	}
	if m.prog.Units[c.unit].Barrier {
		m.barrierLive = false
	}
	committed, sqs := m.engine.CommitOldest()
	if m.cfg.Oracle != nil {
		m.cfg.Oracle.OnCommit(committed.ID)
	}
	if m.tel != nil {
		m.tel.Emit(telemetry.Event{
			Cycle: m.cycle, CPU: c.id, Kind: telemetry.EpochCommit,
			Epoch: committed.ID, Ctx: committed.CurCtx,
			Barrier: m.prog.Units[c.unit].Barrier,
			Instrs:  c.cursor.Trace().Instrs(),
		})
	}
	m.applySquashes(sqs)
	m.emitHomefree()
	m.res.CommittedInstrs += c.cursor.Trace().Instrs()
	m.committed++
	c.epoch = nil
	c.unit = -1
	if m.cfg.CommitPenalty > 0 {
		c.stallUntil = m.cycle + m.cfg.CommitPenalty
		c.stallCat = Busy
	}
	m.res.Breakdown[Busy]++ // the commit cycle itself
}

// retrySync re-attempts a stalled synchronization (latch acquire or
// predictor-driven load sync).
func (m *machine) retrySync(c *core) {
	if c.predSync {
		// Predicted-dependent load: wait until a producer wrote the
		// word or we are the oldest epoch.
		if m.engine.Oldest() == c.epoch {
			m.pred.RecordUseless(c.syncPC)
			c.syncing = false
			c.predSync = false
			m.execute(c)
			return
		}
		if m.engine.ProducerWrote(c.epoch, c.syncAddr) {
			c.syncing = false
			c.predSync = false
			m.execute(c)
			return
		}
		m.accrue(c, Sync)
		return
	}
	// Latch wait.
	if !m.latchDelayed() && m.engine.AcquireLatch(c.epoch, c.syncAddr) {
		c.syncing = false
		if m.tel != nil {
			m.tel.Emit(telemetry.Event{
				Cycle: m.cycle, CPU: c.id, Kind: telemetry.LatchAcquired,
				Epoch: c.epoch.ID, Ctx: c.epoch.CurCtx, Addr: c.syncAddr,
			})
		}
		// Consume the latch-acquire event we peeked at.
		ev, ok := c.cursor.Next(1)
		if !ok || ev.Kind != isa.LatchAcquire {
			panic("sim: latch wait desynchronized from trace")
		}
		m.execute(c)
		return
	}
	m.accrue(c, Sync)
}

// execute runs one issue cycle of the core's trace.
func (m *machine) execute(c *core) {
	budget := uint32(m.cfg.CPU.IssueWidth)
	memUsed := false
	issued := false
	cat := Busy

	for budget > 0 {
		if c.stallUntil > m.cycle {
			break
		}
		kind, ok := c.cursor.Peek()
		if !ok {
			c.done = true
			c.epoch.Completed = true
			break
		}
		if kind.IsMemory() && memUsed {
			break // one data-cache access per cycle
		}
		if kind == isa.LatchAcquire {
			// Peek-first: the event is only consumed once granted.
			ev := peekEvent(c.cursor)
			if m.latchDelayed() || !m.engine.AcquireLatch(c.epoch, ev.Addr) {
				if !issued {
					c.syncing = true
					c.predSync = false
					c.syncAddr = ev.Addr
					c.syncPC = ev.PC
					if m.tel != nil {
						m.tel.Emit(telemetry.Event{
							Cycle: m.cycle, CPU: c.id, Kind: telemetry.LatchStall,
							Epoch: c.epoch.ID, Ctx: c.epoch.CurCtx, Addr: ev.Addr,
						})
					}
					m.accrue(c, Sync)
					return
				}
				break
			}
			if m.tel != nil {
				m.tel.Emit(telemetry.Event{
					Cycle: m.cycle, CPU: c.id, Kind: telemetry.LatchAcquired,
					Epoch: c.epoch.ID, Ctx: c.epoch.CurCtx, Addr: ev.Addr,
				})
			}
			c.cursor.Next(1)
			budget--
			issued = true
			m.maybeSpawn(c)
			continue
		}

		// Predictor-guided sub-thread placement (§5.1): checkpoint
		// immediately before a load that is predicted to be violated,
		// so a violation rewinds almost nothing.
		if kind == isa.Load && m.spawnPred != nil && m.engine.Speculative(c.epoch) {
			ev := peekEvent(c.cursor)
			lastCkpt := c.checkpoints[len(c.checkpoints)-1].Done()
			if m.spawnPred.ShouldSync(ev.PC) && c.cursor.Done() >= lastCkpt+200 {
				m.spawn(c)
			}
		}

		// Predictor-driven synchronization happens before the load
		// issues.
		if kind == isa.Load && m.pred != nil && m.engine.Speculative(c.epoch) {
			ev := peekEvent(c.cursor)
			if m.pred.ShouldSync(ev.PC) && !m.engine.ProducerWrote(c.epoch, ev.Addr) {
				if !issued {
					c.syncing = true
					c.predSync = true
					c.syncAddr = ev.Addr
					c.syncPC = ev.PC
					m.res.PredictorSyncs++
					m.accrue(c, Sync)
					return
				}
				break
			}
		}

		ev, _ := c.cursor.Next(budget)
		if c.ifetch != nil {
			if stall := c.ifetch.fetch(m, ev.PC, ev.N); stall > 0 {
				until := m.cycle + stall
				if until > c.stallUntil {
					c.stallUntil = until
					c.stallCat = CacheMiss
				}
			}
		}
		selfSquashed := false
		switch ev.Kind {
		case isa.ALU:
			budget -= ev.N
		case isa.IntMul, isa.IntDiv, isa.FPOp, isa.FPDiv, isa.FPSqrt:
			budget--
			if lat := m.cfg.CPU.Lat.Of(ev.Kind); lat > 1 {
				c.stallUntil = m.cycle + uint64(lat)
				c.stallCat = Busy
				budget = 0
			}
		case isa.Branch:
			budget--
			m.res.Branches++
			if !c.gshare.Predict(ev.PC, ev.Taken) {
				m.res.Mispredicts++
				c.stallUntil = m.cycle + 1 + uint64(m.cfg.CPU.Lat.MispredictPenalty)
				c.stallCat = Busy
				budget = 0
			}
		case isa.Load:
			budget--
			memUsed = true
			var lat uint64
			lat, selfSquashed = m.load(c, ev)
			if !selfSquashed && lat > m.cfg.Mem.L1HitLat {
				if m.cfg.NonBlockingLoads && m.cycle >= c.missUntil {
					// Run ahead under the miss until the
					// reorder buffer fills (one outstanding
					// miss at a time).
					c.missUntil = m.cycle + lat
					c.missBudget = m.cfg.CPU.ReorderBuffer
				} else {
					c.stallUntil = m.cycle + lat
					if m.cfg.NonBlockingLoads && c.missUntil > c.stallUntil {
						c.stallUntil = c.missUntil
					}
					c.stallCat = CacheMiss
					budget = 0
				}
			}
		case isa.Store:
			budget--
			memUsed = true
			selfSquashed = m.store(c, ev)
		case isa.LatchRelease:
			budget--
			m.engine.ReleaseLatch(c.epoch, ev.Addr)
			if m.tel != nil {
				m.tel.Emit(telemetry.Event{
					Cycle: m.cycle, CPU: c.id, Kind: telemetry.LatchReleased,
					Epoch: c.epoch.ID, Ctx: c.epoch.CurCtx, Addr: ev.Addr,
				})
			}
		default:
			panic(fmt.Sprintf("sim: unhandled event kind %v", ev.Kind))
		}
		issued = true
		if m.cfg.NonBlockingLoads && m.cycle < c.missUntil {
			c.missBudget -= int(ev.N)
			if c.missBudget <= 0 {
				// Reorder buffer full: wait out the miss.
				if c.missUntil > c.stallUntil {
					c.stallUntil = c.missUntil
					c.stallCat = CacheMiss
				}
				budget = 0
			}
		}
		if selfSquashed {
			// The access squashed this core's own epoch (overflow
			// cascade): the cursor has been rewound, stop issuing.
			m.accrue(c, Failed)
			return
		}
		if m.engine.Speculative(c.epoch) {
			m.res.SpecInstrs += uint64(ev.N)
		}
		m.maybeSpawn(c)
		if c.stallUntil > m.cycle {
			break
		}
	}
	m.accrue(c, cat)
}

// latchDelayed reports whether the fault injector suppresses latch grants on
// this cycle (delayed-latch-grant perturbation).
func (m *machine) latchDelayed() bool {
	return m.cfg.Inject != nil && m.cfg.Inject.LatchDelayed(m.cycle)
}

// peekEvent returns the next raw event without consuming it.
func peekEvent(c *trace.Cursor) trace.Event {
	ev, _ := c.PeekEvent()
	return ev
}

// effectiveSpacing computes the sub-thread spacing for an epoch: the
// configured constant under SpawnPeriodic, or the thread size divided evenly
// into the available contexts under SpawnAdaptive (§5.1's suggested
// improvement). SpawnPredictor places checkpoints at predicted loads instead
// and uses no periodic spacing.
func (m *machine) effectiveSpacing(t *trace.Trace) uint64 {
	switch m.cfg.Spawn {
	case SpawnAdaptive:
		n := uint64(m.cfg.TLS.SubthreadsPerEpoch)
		if n == 0 {
			return 0
		}
		sp := t.Instrs() / n
		if sp < 500 {
			sp = 500
		}
		return sp
	case SpawnPredictor:
		return 0
	default:
		return m.cfg.SubthreadSpacing
	}
}

// maybeSpawn starts a new sub-thread when the spacing policy says so (§5.1),
// while hardware contexts remain and the epoch is still speculative.
func (m *machine) maybeSpawn(c *core) {
	if c.spacing == 0 || c.epoch == nil {
		return
	}
	if c.cursor.Done() < c.nextSpawnAt {
		return
	}
	if !m.engine.Speculative(c.epoch) {
		c.nextSpawnAt = ^uint64(0) // homefree: no more checkpoints needed
		return
	}
	if !m.spawn(c) {
		c.nextSpawnAt = ^uint64(0) // contexts exhausted
		return
	}
	c.nextSpawnAt += c.spacing
}

// spawn performs the sub-thread start: engine context, checkpoint capture,
// per-sub-thread profiler reset, and the register-backup cost.
func (m *machine) spawn(c *core) bool {
	if !m.engine.StartSubthread(c.epoch) {
		return false
	}
	ctx := c.epoch.CurCtx
	for len(c.checkpoints) <= ctx {
		c.checkpoints = append(c.checkpoints, trace.Pos{})
		c.ctxCycles = append(c.ctxCycles, Breakdown{})
	}
	c.checkpoints[ctx] = c.cursor.Pos()
	c.ctxCycles[ctx] = Breakdown{}
	if m.tel != nil {
		m.tel.Emit(telemetry.Event{
			Cycle: m.cycle, CPU: c.id, Kind: telemetry.SubthreadStart,
			Epoch: c.epoch.ID, Ctx: ctx,
		})
	}
	c.elt.Reset() // exposure is tracked per sub-thread (§3.1)
	if m.cfg.RegBackupPenalty > 0 {
		// Backing the register file up to memory stalls the pipeline.
		until := m.cycle + m.cfg.RegBackupPenalty
		if until > c.stallUntil {
			c.stallUntil = until
			c.stallCat = Busy
		}
	}
	return true
}
