package sim

import (
	"fmt"

	"subthreads/internal/mem"
)

// MemOracle observes the memory image a run commits. The simulator calls it
// at the three points that determine the final architectural state: every
// store (before the engine applies it), every sub-thread squash (so buffered
// stores of rewound contexts are discarded), and every epoch commit (folding
// the surviving stores into the committed image in program order). The
// differential oracle in internal/check implements it to compare the
// speculative execution against a serial replay of the same traces.
//
// unit is the program-unit index (== epoch ID), ctx the sub-thread context,
// seq the number of trace instructions retired by the unit up to and
// including the store — together (unit, seq) names one dynamic store site,
// which is the store's identity in a value-free trace.
type MemOracle interface {
	OnStore(unit uint64, ctx int, addr mem.Addr, seq uint64)
	OnSquash(unit uint64, ctx int)
	OnCommit(unit uint64)
}

// FaultKind selects what a scheduled fault does to the run.
type FaultKind uint8

const (
	// FaultSquash force-squashes a speculative sub-thread (a synthetic
	// violation, exercising the secondary-violation cascade).
	FaultSquash FaultKind = iota
	// FaultOverflow synthesizes speculative-buffer exhaustion: under
	// OverflowSquash the victim sub-thread is squashed with the overflow
	// reason; under OverflowStall the epoch is stalled as if its store had
	// been refused.
	FaultOverflow
)

func (k FaultKind) String() string {
	switch k {
	case FaultSquash:
		return "squash"
	case FaultOverflow:
		return "overflow"
	default:
		return fmt.Sprintf("fault(%d)", uint8(k))
	}
}

// Fault is one scheduled perturbation. CPU and Ctx are hints reduced modulo
// the live-victim population at delivery time, so every schedule applies to
// every machine shape.
type Fault struct {
	Cycle uint64
	Kind  FaultKind
	CPU   int
	Ctx   int
}

// Injector feeds deterministic faults into a run. Next pops every fault
// scheduled at or before now (in schedule order); LatchDelayed reports
// whether latch grants are suppressed on this cycle (delayed-latch-grant
// perturbation). Implementations must be pure functions of their seed and
// the query cycle so runs stay reproducible across worker counts.
type Injector interface {
	Next(now uint64) (Fault, bool)
	LatchDelayed(now uint64) bool
}

// RunError is the structured failure a run can end with instead of a result:
// a protocol-invariant audit failure (paranoid mode), a forward-progress
// watchdog trip, a cycle-budget overrun, or an external cancellation
// (Config.Cancel — deadlines and client disconnects threaded in by a
// serving layer). Run panics with *RunError so legacy callers keep their
// no-error signature; RunE returns it.
type RunError struct {
	// Kind is "audit", "watchdog", "max-cycles", or "cancelled".
	Kind string
	// Cycle is when the run was abandoned.
	Cycle uint64
	// Err is the underlying cause (e.g. *tls.AuditError).
	Err error
}

func (e *RunError) Error() string {
	return fmt.Sprintf("sim: %s failure at cycle %d: %v", e.Kind, e.Cycle, e.Err)
}

func (e *RunError) Unwrap() error { return e.Err }
