package sim

import (
	"fmt"

	"subthreads/internal/cache"
	"subthreads/internal/isa"
	"subthreads/internal/profile"
	"subthreads/internal/telemetry"
	"subthreads/internal/tls"
	"subthreads/internal/trace"
)

// load performs a data load: L1 lookup, L2/memory timing, TLS dependence
// bookkeeping. It returns the total load-to-use latency and whether the
// access ended up squashing this core's own epoch (buffer overflow cascade).
func (m *machine) load(c *core, ev trace.Event) (lat uint64, selfSquashed bool) {
	line := ev.Addr.Line()
	l1Hit := c.l1.Lookup(cache.Entry{Line: line, Ver: 0})
	if l1Hit {
		m.res.L1Hits++
	} else {
		m.res.L1Misses++
	}

	// Fast path: an L1 hit needs no protocol action when the epoch is
	// non-speculative (nothing to track) or when it already notified the
	// L2 about this line — the L1 is unaware of sub-threads (§2.2), so
	// repeated loads keep the original (earliest) SL marking.
	if l1Hit {
		if !m.engine.Speculative(c.epoch) {
			return m.cfg.Mem.L1HitLat, false
		}
		if c.l1Flags.contains(line) {
			return m.cfg.Mem.L1HitLat, false
		}
	}

	res := m.engine.Load(c.epoch, ev.Addr)
	lat = m.cfg.Mem.L1HitLat
	if !l1Hit {
		lat += m.cfg.Mem.L2HitLat + m.l2Banks.Access(line, m.cycle)
		if res.L2Hit {
			m.res.L2Hits++
		} else {
			m.res.L2Misses++
			m.res.MemAccesses++
			lat += m.cfg.Mem.MemLat + m.memBanks.Access(line, m.cycle)
		}
		c.l1.Insert(cache.Entry{Line: line, Ver: 0}, nil)
	}
	if m.engine.Speculative(c.epoch) {
		c.l1Flags.add(line)
	}
	if res.Exposed {
		c.elt.Record(ev.Addr, ev.PC)
	}
	return lat, m.applySquashesFrom(c, res.Squashes)
}

// store performs a data store: it propagates write-through to the L2, runs
// violation detection, and applies any squashes. Store latency is hidden by
// the store buffer, but the write consumes L2 bank bandwidth.
func (m *machine) store(c *core, ev trace.Event) (selfSquashed bool) {
	line := ev.Addr.Line()
	if m.cfg.Oracle != nil {
		// Observe before the engine applies the store: a violation or
		// overflow squash triggered by this very store must be able to
		// discard it again through OnSquash.
		m.cfg.Oracle.OnStore(c.epoch.ID, c.epoch.CurCtx, ev.Addr, c.cursor.Done())
	}
	res := m.engine.Store(c.epoch, ev.PC, ev.Addr)
	if res.L2Hit {
		m.res.L2Hits++
	} else {
		m.res.L2Misses++
		m.res.MemAccesses++
		m.memBanks.Access(line, m.cycle)
	}
	m.l2Banks.Access(line, m.cycle) // write-through traffic
	// Write-allocate into the L1 (write-through, so never dirty).
	if !c.l1.Present(cache.Entry{Line: line, Ver: 0}) {
		m.res.L1Misses++
		c.l1.Insert(cache.Entry{Line: line, Ver: 0}, nil)
	} else {
		m.res.L1Hits++
	}
	if m.engine.Speculative(c.epoch) {
		c.l1Mod.noteWrite(line, c.epoch.CurCtx)
	}
	if res.Stall {
		m.res.OverflowWaits++
		c.overflowWait = true
		c.overflowCommits = m.engine.Stats.Commits
		if m.tel != nil {
			m.tel.Emit(telemetry.Event{
				Cycle: m.cycle, CPU: c.id, Kind: telemetry.OverflowStall,
				Epoch: c.epoch.ID, Ctx: c.epoch.CurCtx, Addr: ev.Addr,
			})
		}
	}
	return m.applySquashesFrom(c, res.Squashes)
}

// applySquashes rewinds every squashed core (see applySquashesFrom).
func (m *machine) applySquashes(sqs []tls.Squash) {
	m.applySquashesFrom(nil, sqs)
}

// applySquashesFrom rewinds every squashed core: it reclassifies the rewound
// contexts' cycles as failed speculation, attributes them to the load/store
// PC pair for the §3.1 profile, trains the dependence predictor, rewinds the
// trace cursor to the sub-thread checkpoint, and invalidates the
// speculatively-modified L1 lines. It reports whether the caller's own epoch
// was among the squashed, so the caller can stop its issue loop.
func (m *machine) applySquashesFrom(caller *core, sqs []tls.Squash) (selfSquashed bool) {
	for _, sq := range sqs {
		c := m.coreOf(sq.Epoch)
		if c == nil {
			panic("sim: squash for unknown epoch")
		}
		if sq.Ctx >= len(c.checkpoints) {
			panic("sim: squash context has no checkpoint")
		}
		if c == caller {
			selfSquashed = true
		}
		// Rewind depth in sub-thread contexts, measured before truncation.
		depth := len(c.ctxCycles) - 1 - sq.Ctx

		// Failed-cycle accounting: everything the rewound contexts
		// accrued becomes failed speculation.
		var failed uint64
		for ctx := sq.Ctx; ctx < len(c.ctxCycles); ctx++ {
			for cat := Category(0); cat < NumCategories; cat++ {
				v := c.ctxCycles[ctx][cat]
				if v == 0 {
					continue
				}
				failed += v
				if cat != Failed {
					m.res.Breakdown[cat] -= v
					m.res.Breakdown[Failed] += v
				}
				c.ctxCycles[ctx][cat] = 0
			}
		}

		// §3.1 profiling: pair the violating store PC with the exposed
		// load PC of the violated line and charge the failed cycles.
		var loadPC isa.PC
		if sq.Reason == tls.Primary {
			loadPC, _ = c.elt.Lookup(sq.Addr)
			m.pairs.Attribute(profile.Pair{LoadPC: loadPC, StorePC: sq.StorePC}, failed)
			if m.pred != nil {
				m.pred.RecordViolation(loadPC)
			}
			if m.spawnPred != nil {
				m.spawnPred.RecordViolation(loadPC)
			}
		}

		// Rewind execution to the checkpoint.
		ckpt := c.checkpoints[sq.Ctx]
		if m.cfg.Paranoid && ckpt.Done() > c.cursor.Done() && m.err == nil {
			m.err = fmt.Errorf(
				"rewind of epoch %d ctx %d moves cursor forward (%d -> %d instrs)",
				sq.Epoch.ID, sq.Ctx, c.cursor.Done(), ckpt.Done())
		}
		if m.cfg.Oracle != nil {
			m.cfg.Oracle.OnSquash(sq.Epoch.ID, sq.Ctx)
		}
		rewound := c.cursor.Done() - ckpt.Done()
		m.res.RewoundInstrs += rewound
		if m.tel != nil {
			ev := telemetry.Event{
				Cycle: m.cycle, CPU: c.id, Epoch: sq.Epoch.ID,
				Ctx: sq.Ctx, Depth: depth, Instrs: rewound,
			}
			switch sq.Reason {
			case tls.Primary:
				ev.Kind = telemetry.PrimaryViolation
				ev.LoadPC = loadPC
				ev.StorePC = sq.StorePC
				ev.Addr = sq.Addr
			case tls.Secondary:
				ev.Kind = telemetry.SecondaryViolation
			case tls.Overflow:
				ev.Kind = telemetry.OverflowSquash
			}
			m.tel.Emit(ev)
		}
		c.cursor.Seek(ckpt)
		c.checkpoints = c.checkpoints[:sq.Ctx+1]
		c.ctxCycles = c.ctxCycles[:sq.Ctx+1]
		c.nextSpawnAt = ckpt.Done() + c.spacing
		c.done = false
		c.syncing = false
		c.predSync = false
		c.overflowWait = false

		// The violation invalidates the speculatively-modified lines in
		// the violated CPU's L1 and clears its notify flags. Without
		// L1 sub-thread tracking, ALL modified lines go (§2.2: "the L1
		// caches are unaware of sub-threads"); with it, only the
		// rewound contexts' lines do (re-inserted after the O(1) clear,
		// since surviving entries must outlive the generation bump).
		c.modKeep = c.modKeep[:0]
		for _, en := range c.l1Mod.all() {
			if m.cfg.L1SubthreadTracking && int(en.ctx) < sq.Ctx {
				c.modKeep = append(c.modKeep, en)
				continue
			}
			if c.l1.Remove(cache.Entry{Line: en.line, Ver: 0}) {
				m.res.L1Invalidations++
			}
		}
		c.l1Mod.clear()
		for _, en := range c.modKeep {
			c.l1Mod.noteWrite(en.line, int(en.ctx))
		}
		c.l1Flags.clear()
		c.elt.Reset()

		// Recovery penalty.
		if m.cfg.ViolationPenalty > 0 {
			until := m.cycle + m.cfg.ViolationPenalty
			if until > c.stallUntil {
				c.stallUntil = until
				c.stallCat = Failed
			}
		}
	}
	return selfSquashed
}

// finish assembles the Result after the run loop ends.
func (m *machine) finish() *Result {
	m.res.TLS = m.engine.Stats
	m.res.Pairs = m.pairs
	return &m.res
}
