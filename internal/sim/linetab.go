package sim

import (
	"sync"

	"subthreads/internal/mem"
)

// Per-core speculative-line bookkeeping (the L1 notify flags and the
// speculatively-modified-line list) sits on the path of every speculative
// load and store. Like the hardware it models — per-line flag bits in the L1
// tag array — it uses direct addressing by line index, not hashing: a paged
// two-level array over the 32-bit simulated address space, with generation
// stamps so that the per-epoch clear is one counter increment instead of a
// table walk or a reallocation.
const (
	corePageShift = 12 // lines per page (4096 lines = 128KB of address space)
	corePageSize  = 1 << corePageShift
	corePageMask  = corePageSize - 1
)

// Pages are recycled across machines (runs) through sync.Pools: a finished
// run releases its pages, and the next machine — possibly on another
// goroutine of the parallel experiment runner — reuses them. Pages are
// zeroed on get, so generation stamps can never alias across machines.
var (
	pagePool32 = sync.Pool{New: func() any { return make([]uint32, corePageSize) }}
	pagePool64 = sync.Pool{New: func() any { return make([]uint64, corePageSize) }}
)

func getPage32() []uint32 {
	pg := pagePool32.Get().([]uint32)
	clear(pg)
	return pg
}

func getPage64() []uint64 {
	pg := pagePool64.Get().([]uint64)
	clear(pg)
	return pg
}

// growPages extends a page directory to cover index p, growing geometrically
// so that workloads touching ever-higher regions don't recopy the directory
// on every new page.
func growPages[P any](pages []P, p uint32) []P {
	n := uint32(len(pages)) * 2
	if n <= p {
		n = p + 1
	}
	grown := make([]P, n)
	copy(grown, pages)
	return grown
}

// lineSet is a set of cache lines with O(1) clear: membership means "stamp
// equals the current generation".
type lineSet struct {
	pages [][]uint32
	gen   uint32
}

func newLineSet() *lineSet { return &lineSet{gen: 1} }

// slot returns the stamp cell for line, materializing its page when alloc is
// set; nil when the page does not exist and alloc is false.
func (s *lineSet) slot(line mem.Addr, alloc bool) *uint32 {
	idx := line.LineIndex()
	p := idx >> corePageShift
	if p >= uint32(len(s.pages)) {
		if !alloc {
			return nil
		}
		s.pages = growPages(s.pages, p)
	}
	if s.pages[p] == nil {
		if !alloc {
			return nil
		}
		s.pages[p] = getPage32()
	}
	return &s.pages[p][idx&corePageMask]
}

// release hands every page back to the pool; the set must not be used after.
func (s *lineSet) release() {
	for i, pg := range s.pages {
		if pg != nil {
			pagePool32.Put(pg)
			s.pages[i] = nil
		}
	}
}

func (s *lineSet) contains(line mem.Addr) bool {
	sl := s.slot(line, false)
	return sl != nil && *sl == s.gen
}

func (s *lineSet) add(line mem.Addr) { *s.slot(line, true) = s.gen }

// clear empties the set by advancing the generation; pages are retained.
func (s *lineSet) clear() {
	s.gen++
	if s.gen == 0 {
		// Generation wraparound (once per 2^32 clears): stale stamps
		// would alias the fresh generation, so zero the pages for real.
		for _, p := range s.pages {
			clear(p)
		}
		s.gen = 1
	}
}

// modEntry records one speculatively-modified line and the earliest
// sub-thread context that wrote it.
type modEntry struct {
	line mem.Addr
	ctx  int32
}

// lineModMap maps speculatively-modified lines to the earliest writing
// sub-thread context. Lookup is direct-addressed like lineSet; the entries
// slice gives violations a deterministic, allocation-free iteration order.
type lineModMap struct {
	// pages hold stamp<<32 | (entry index + 1) per line.
	pages   [][]uint64
	gen     uint32
	entries []modEntry
}

func newLineModMap() *lineModMap { return &lineModMap{gen: 1} }

func (m *lineModMap) slot(line mem.Addr, alloc bool) *uint64 {
	idx := line.LineIndex()
	p := idx >> corePageShift
	if p >= uint32(len(m.pages)) {
		if !alloc {
			return nil
		}
		m.pages = growPages(m.pages, p)
	}
	if m.pages[p] == nil {
		if !alloc {
			return nil
		}
		m.pages[p] = getPage64()
	}
	return &m.pages[p][idx&corePageMask]
}

// release hands every page back to the pool; the map must not be used after.
func (m *lineModMap) release() {
	for i, pg := range m.pages {
		if pg != nil {
			pagePool64.Put(pg)
			m.pages[i] = nil
		}
	}
}

// noteWrite records that ctx speculatively wrote line, keeping the earliest
// writing context per line (the invalidation granularity of §2.2).
func (m *lineModMap) noteWrite(line mem.Addr, ctx int) {
	sl := m.slot(line, true)
	if *sl>>32 == uint64(m.gen) {
		if en := &m.entries[uint32(*sl)-1]; int32(ctx) < en.ctx {
			en.ctx = int32(ctx)
		}
		return
	}
	m.entries = append(m.entries, modEntry{line: line, ctx: int32(ctx)})
	*sl = uint64(m.gen)<<32 | uint64(len(m.entries))
}

// all returns the live entries in insertion order. The slice aliases
// internal storage: it is invalidated by the next noteWrite or clear.
func (m *lineModMap) all() []modEntry { return m.entries }

// clear empties the map by advancing the generation; pages are retained.
func (m *lineModMap) clear() {
	m.entries = m.entries[:0]
	m.gen++
	if m.gen == 0 {
		for _, p := range m.pages {
			clear(p)
		}
		m.gen = 1
	}
}
