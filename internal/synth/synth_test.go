package synth

import (
	"testing"
	"testing/quick"

	"subthreads/internal/sim"
)

func TestGenerateShape(t *testing.T) {
	p := Params{Threads: 8, ThreadSize: 20000, DepLoads: 10, Seed: 1}
	prog := MustGenerate(p)
	if len(prog.Units) != 8 {
		t.Fatalf("units = %d", len(prog.Units))
	}
	for i, u := range prog.Units {
		if u.Barrier {
			t.Errorf("unit %d is a barrier", i)
		}
		got := u.Trace.Instrs()
		if got < 19000 || got > 21000 {
			t.Errorf("unit %d size = %d, want ~20000", i, got)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	for _, p := range []Params{
		{Threads: 0, ThreadSize: 1000},
		{Threads: 1, ThreadSize: 10},
		{Threads: 1, ThreadSize: 1000, DepLoads: 100},
	} {
		if _, err := Generate(p); err == nil {
			t.Errorf("Generate(%+v) succeeded", p)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Threads: 4, ThreadSize: 5000, DepLoads: 4, Seed: 9}
	a := MustGenerate(p)
	b := MustGenerate(p)
	for i := range a.Units {
		ea, eb := a.Units[i].Trace.Events(), b.Units[i].Trace.Events()
		if len(ea) != len(eb) {
			t.Fatalf("unit %d event counts differ", i)
		}
		for j := range ea {
			if ea[j] != eb[j] {
				t.Fatalf("unit %d event %d differs: %v vs %v", i, j, ea[j], eb[j])
			}
		}
	}
}

func TestIndependentThreadsDoNotViolate(t *testing.T) {
	prog := MustGenerate(Params{Threads: 8, ThreadSize: 10000, DepLoads: 0, Seed: 3})
	cfg := sim.DefaultConfig()
	res := sim.Run(cfg, prog)
	if res.TLS.PrimaryViolations != 0 {
		t.Errorf("independent threads violated %d times", res.TLS.PrimaryViolations)
	}
}

func TestDependentThreadsViolate(t *testing.T) {
	prog := MustGenerate(Params{Threads: 8, ThreadSize: 50000, DepLoads: 20, Seed: 3})
	cfg := sim.DefaultConfig()
	cfg.SubthreadSpacing = 0
	cfg.TLS.SubthreadsPerEpoch = 1
	res := sim.Run(cfg, prog)
	if res.TLS.PrimaryViolations == 0 {
		t.Error("dense dependences never violated under all-or-nothing TLS")
	}
}

// TestSubthreadsWinOnLargeDependentThreads is the paper's thesis as a
// property over the synthetic space: for large threads with many
// dependences, sub-threads beat all-or-nothing TLS.
func TestSubthreadsWinOnLargeDependentThreads(t *testing.T) {
	prog := func() *sim.Program {
		return MustGenerate(Params{Threads: 12, ThreadSize: 60000, DepLoads: 24, Seed: 5})
	}
	aonCfg := sim.DefaultConfig()
	aonCfg.SubthreadSpacing = 0
	aonCfg.TLS.SubthreadsPerEpoch = 1
	aon := sim.Run(aonCfg, prog())
	sub := sim.Run(sim.DefaultConfig(), prog())
	if sub.Cycles >= aon.Cycles {
		t.Errorf("sub-threads %d cycles, all-or-nothing %d", sub.Cycles, aon.Cycles)
	}
}

// TestSimulatorInvariantsUnderRandomPrograms stress-tests the whole machine:
// any generated program must complete with all instructions committed and
// the accounting identity intact.
func TestSimulatorInvariantsUnderRandomPrograms(t *testing.T) {
	f := func(seed int64, threads, size, deps uint8) bool {
		p := Params{
			Threads:    int(threads%6) + 2,
			ThreadSize: int(size)*64 + 2000,
			DepLoads:   int(deps % 16),
			Seed:       seed,
		}
		prog, err := Generate(p)
		if err != nil {
			return true // out-of-domain parameters are fine to reject
		}
		cfg := sim.DefaultConfig()
		cfg.TLS.L2Sets = 256
		res := sim.Run(cfg, prog)
		if res.Breakdown.Total() != uint64(cfg.CPUs)*res.Cycles {
			return false
		}
		if res.CommittedInstrs != prog.Instrs() {
			return false
		}
		return res.TLS.Commits == uint64(p.Threads)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
