// Package synth generates parameterized synthetic speculative-thread
// workloads: N threads of a chosen size with a chosen number of cross-thread
// dependent loads, spread across each thread.
//
// The paper's introduction frames its contribution by exactly these two
// axes: conventional all-or-nothing TLS suffices for threads that are "small
// or highly independent" (a few hundred to a few thousand instructions, as
// in SPEC), while the database threads — 7.5k-490k instructions with
// "between 2 and 75 dependent loads per thread" — need sub-threads. The
// dependence-density sweep in cmd/experiments uses this package to map that
// claim: where in (thread size x dependence count) space sub-threads start
// to matter.
//
// It also doubles as a stress generator: random programs with known
// structure exercise the whole simulator under property-based tests.
package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"subthreads/internal/isa"
	"subthreads/internal/mem"
	"subthreads/internal/sim"
	"subthreads/internal/trace"
)

// Params describes a synthetic workload.
type Params struct {
	// Threads is the number of speculative threads (epochs).
	Threads int
	// ThreadSize is the dynamic instruction count per thread.
	ThreadSize int
	// DepLoads is the number of dependent loads per thread: loads of
	// shared variables that the logically-previous thread stores.
	DepLoads int
	// Jitter randomizes dependence positions by up to this fraction of
	// the thread size, modeling how the same static dependence appears at
	// different dynamic positions in different iterations of real code.
	// Defaults to 0.30 when zero. Low jitter (aligned positions in every
	// thread) systematically favors full restarts — the restart staggers
	// the threads so later dependences arrive in order, the effect §5.1
	// observes on DELIVERY OUTER — while realistic scatter favors
	// sub-threads.
	Jitter float64
	// Seed makes generation reproducible.
	Seed int64
}

func (p Params) validate() error {
	if p.Threads < 1 {
		return fmt.Errorf("synth: Threads = %d", p.Threads)
	}
	if p.ThreadSize < 64 {
		return fmt.Errorf("synth: ThreadSize = %d (min 64)", p.ThreadSize)
	}
	if p.DepLoads < 0 || p.DepLoads*40 > p.ThreadSize {
		return fmt.Errorf("synth: DepLoads = %d too dense for thread size %d", p.DepLoads, p.ThreadSize)
	}
	return nil
}

// sharedBase is where the shared dependence variables live; each variable
// gets its own cache line so every dependence is genuine (no false sharing).
const sharedBase = mem.Addr(0x100000)

// privateBase spaces each thread's private working set.
const privateBase = mem.Addr(0x800000)

// Generate builds the program: each thread k loads shared variable v_i at
// position load_i and stores it at position store_i > load_i, so thread k+1's
// load of v_i depends on thread k's store. Positions are spread evenly with
// per-thread jitter. The rest of each thread is a realistic mix of compute,
// private memory traffic, and biased branches.
func Generate(p Params) (*sim.Program, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	jitter := p.Jitter
	if jitter == 0 {
		jitter = 0.30
	}
	rng := rand.New(rand.NewSource(p.Seed))
	prog := &sim.Program{}

	for t := 0; t < p.Threads; t++ {
		// Dependence event positions: for each shared variable, a load
		// and, later, a store — evenly spread with jitter.
		type ev struct {
			pos  int
			load bool
			v    int
		}
		var evs []ev
		for i := 0; i < p.DepLoads; i++ {
			// Each dependence is a read-modify-write of a shared
			// variable (the shape of the database's shared counters
			// and list heads): an exposed load followed shortly by
			// the store the next thread's load depends on. Jitter
			// shifts each thread's position so some instances
			// arrive out of order and violate.
			span := p.ThreadSize / (p.DepLoads + 1)
			center := (i + 1) * span
			if j := int(float64(p.ThreadSize) * jitter); j > 0 {
				center += rng.Intn(2*j+1) - j
			}
			loadPos := clamp(center, 1, p.ThreadSize-42)
			storePos := loadPos + 40
			evs = append(evs, ev{pos: loadPos, load: true, v: i})
			evs = append(evs, ev{pos: storePos, load: false, v: i})
		}
		sort.Slice(evs, func(a, b int) bool { return evs[a].pos < evs[b].pos })

		b := trace.NewBuilder()
		emitted := 0
		priv := privateBase + mem.Addr(t%8)*0x10000
		privIdx := 0
		fill := func(n int) {
			// Compute filler with private memory traffic and biased
			// branches, block size 32. Private stores slide through a
			// 512-line window (like a call stack) so one line holds at
			// most a couple of speculative versions across sub-thread
			// contexts — the same property real stacks give the L2.
			for n >= 32 {
				b.ALU(12)
				b.Load(isa.PC(100), priv+mem.Addr(privIdx%4096)*mem.WordSize)
				b.ALU(10)
				b.Branch(isa.PC(101), rng.Intn(8) != 0)
				b.ALU(7)
				privIdx++
				b.Store(isa.PC(102), priv+mem.Addr(privIdx%4096)*mem.WordSize)
				n -= 32
			}
			if n > 0 {
				b.ALU(uint32(n))
			}
		}
		for _, e := range evs {
			if e.pos > emitted {
				fill(e.pos - emitted)
				emitted = e.pos
			}
			addr := sharedBase + mem.Addr(e.v)*mem.LineSize
			if e.load {
				b.Load(isa.PC(200+e.v), addr)
			} else {
				b.Store(isa.PC(300+e.v), addr)
			}
			emitted++
		}
		if emitted < p.ThreadSize {
			fill(p.ThreadSize - emitted)
		}
		prog.Units = append(prog.Units, sim.Unit{Trace: b.Finish()})
	}
	return prog, nil
}

// MustGenerate is Generate for known-good parameters.
func MustGenerate(p Params) *sim.Program {
	prog, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return prog
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
