module subthreads

go 1.22
