// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark iteration performs one full experiment (database load,
// trace recording, cycle-level simulation) and reports the paper's metrics —
// speedup over SEQUENTIAL, simulated Mcycles, violations — via ReportMetric,
// so `go test -bench=. -benchmem` reproduces the whole evaluation. The
// cmd/experiments tool renders the same data as figures; these benchmarks are
// the machine-readable form.
package subthreads_test

import (
	"fmt"
	"testing"

	"subthreads"
)

// benchSpec keeps benchmark iterations to roughly a second.
func benchSpec(b subthreads.Benchmark) subthreads.Spec {
	spec := subthreads.DefaultSpec(b)
	spec.Txns = 3
	spec.Warmup = 1
	return spec
}

// seqCycles caches the SEQUENTIAL reference run per benchmark (the
// normalization baseline of every figure).
var seqCycles = map[subthreads.Benchmark]uint64{}

func seqReference(b subthreads.Benchmark) uint64 {
	if c, ok := seqCycles[b]; ok {
		return c
	}
	res, _ := subthreads.Run(benchSpec(b), subthreads.Sequential)
	seqCycles[b] = res.Cycles
	return res.Cycles
}

func reportRun(b *testing.B, res *subthreads.Result, ref uint64) {
	b.ReportMetric(float64(ref)/float64(res.Cycles), "speedup")
	b.ReportMetric(float64(res.Cycles)/1e6, "Mcycles")
	b.ReportMetric(float64(res.TLS.PrimaryViolations+res.TLS.SecondaryViolations), "violations")
}

// BenchmarkTable2 regenerates the Table 2 benchmark statistics: each
// sub-benchmark reports the thread size and coverage of one workload.
func BenchmarkTable2(b *testing.B) {
	for _, bench := range subthreads.Benchmarks() {
		b.Run(bench.String(), func(b *testing.B) {
			var built *subthreads.Built
			for i := 0; i < b.N; i++ {
				built = subthreads.Build(benchSpec(bench), false)
			}
			b.ReportMetric(built.Stats.AvgThreadSize, "instrs/thread")
			b.ReportMetric(built.Stats.Coverage*100, "coverage%")
			b.ReportMetric(built.Stats.ThreadsPerTxn, "threads/txn")
		})
	}
}

// BenchmarkSimulate isolates the simulator hot path: the program is built
// once through the shared build cache and every iteration is one pure
// sim.Run over it — `go test -bench=BenchmarkSimulate -benchmem` is the
// allocation guard for the de-allocated inner loop (allocs/op here is
// allocations per run, excluding the build).
func BenchmarkSimulate(b *testing.B) {
	builder := subthreads.NewBuilder()
	for _, e := range []subthreads.Experiment{subthreads.NoSubthread, subthreads.Baseline} {
		b.Run(e.String(), func(b *testing.B) {
			built := builder.Build(benchSpec(subthreads.NewOrder), false)
			cfg := subthreads.Machine(e)
			b.ReportAllocs()
			b.ResetTimer()
			var res *subthreads.Result
			for i := 0; i < b.N; i++ {
				res = subthreads.Simulate(cfg, built.Program)
			}
			b.ReportMetric(float64(res.EpochCount), "epochs")
		})
	}
}

// BenchmarkFigure5 regenerates Figure 5: every benchmark crossed with the
// five machine configurations; the speedup metric is the bar height inverse.
func BenchmarkFigure5(b *testing.B) {
	experiments := []subthreads.Experiment{
		subthreads.Sequential,
		subthreads.TLSSeq,
		subthreads.NoSubthread,
		subthreads.Baseline,
		subthreads.NoSpeculation,
	}
	for _, bench := range subthreads.Benchmarks() {
		for _, e := range experiments {
			b.Run(fmt.Sprintf("%s/%s", bench, e), func(b *testing.B) {
				ref := seqReference(bench)
				var res *subthreads.Result
				for i := 0; i < b.N; i++ {
					res, _ = subthreads.Run(benchSpec(bench), e)
				}
				reportRun(b, res, ref)
			})
		}
	}
}

// BenchmarkFigure6 regenerates (a compact grid of) Figure 6: sub-thread
// count x sub-thread size for the five TLS-profitable benchmarks. The full
// grid is available from cmd/experiments -figure6.
func BenchmarkFigure6(b *testing.B) {
	counts := []int{2, 8}
	sizes := []uint64{2500, 5000, 50000}
	for _, bench := range []subthreads.Benchmark{
		subthreads.NewOrder, subthreads.NewOrder150, subthreads.Delivery,
		subthreads.DeliveryOuter, subthreads.StockLevel,
	} {
		for _, n := range counts {
			for _, size := range sizes {
				b.Run(fmt.Sprintf("%s/subthreads=%d/size=%d", bench, n, size), func(b *testing.B) {
					ref := seqReference(bench)
					cfg := subthreads.Machine(subthreads.Baseline)
					cfg.TLS.SubthreadsPerEpoch = n
					cfg.SubthreadSpacing = size
					var res *subthreads.Result
					for i := 0; i < b.N; i++ {
						res, _ = subthreads.RunConfig(benchSpec(bench), cfg)
					}
					reportRun(b, res, ref)
				})
			}
		}
	}
}

// BenchmarkStartTable regenerates the Figure 4 ablation: secondary
// violations with and without the sub-thread start table.
func BenchmarkStartTable(b *testing.B) {
	for _, on := range []bool{true, false} {
		name := "on"
		if !on {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			ref := seqReference(subthreads.NewOrder150)
			cfg := subthreads.Machine(subthreads.Baseline)
			cfg.TLS.StartTable = on
			var res *subthreads.Result
			for i := 0; i < b.N; i++ {
				res, _ = subthreads.RunConfig(benchSpec(subthreads.NewOrder150), cfg)
			}
			reportRun(b, res, ref)
			b.ReportMetric(float64(res.RewoundInstrs), "rewound-instrs")
		})
	}
}

// BenchmarkPredictor regenerates the §2.2 comparison: all-or-nothing TLS, a
// Moshovos-style dependence predictor, and sub-threads.
func BenchmarkPredictor(b *testing.B) {
	for _, e := range []subthreads.Experiment{
		subthreads.NoSubthread, subthreads.PredictorSync, subthreads.Baseline,
	} {
		b.Run(e.String(), func(b *testing.B) {
			ref := seqReference(subthreads.NewOrder)
			var res *subthreads.Result
			for i := 0; i < b.N; i++ {
				res, _ = subthreads.Run(benchSpec(subthreads.NewOrder), e)
			}
			reportRun(b, res, ref)
			b.ReportMetric(float64(res.PredictorSyncs), "syncs")
		})
	}
}

// BenchmarkVictimCache regenerates the §2.1 sweep: speculative victim cache
// capacity vs. overflow squashes on the worst-case workload.
func BenchmarkVictimCache(b *testing.B) {
	for _, entries := range []int{0, 16, 64} {
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			ref := seqReference(subthreads.DeliveryOuter)
			cfg := subthreads.Machine(subthreads.Baseline)
			cfg.TLS.VictimEntries = entries
			var res *subthreads.Result
			for i := 0; i < b.N; i++ {
				res, _ = subthreads.RunConfig(benchSpec(subthreads.DeliveryOuter), cfg)
			}
			reportRun(b, res, ref)
			b.ReportMetric(float64(res.TLS.OverflowSquashes), "overflow-squashes")
		})
	}
}

// BenchmarkTuning regenerates the §3.2 narrative: NEW ORDER speedup at each
// database optimization level.
func BenchmarkTuning(b *testing.B) {
	for lvl := 0; lvl <= 5; lvl++ {
		b.Run(fmt.Sprintf("opt=%d", lvl), func(b *testing.B) {
			ref := seqReference(subthreads.NewOrder)
			spec := benchSpec(subthreads.NewOrder)
			spec.OptLevel = lvl
			var res *subthreads.Result
			for i := 0; i < b.N; i++ {
				res, _ = subthreads.RunConfig(spec, subthreads.Machine(subthreads.Baseline))
			}
			reportRun(b, res, ref)
		})
	}
}

// BenchmarkSpawnPolicy regenerates the §5.1 placement-policy comparison:
// periodic (BASELINE), adaptive sizing, and predictor-guided checkpoints.
func BenchmarkSpawnPolicy(b *testing.B) {
	for _, p := range []subthreads.SpawnPolicy{
		subthreads.SpawnPeriodic, subthreads.SpawnAdaptive, subthreads.SpawnPredictor,
	} {
		b.Run(p.String(), func(b *testing.B) {
			ref := seqReference(subthreads.NewOrder150)
			cfg := subthreads.Machine(subthreads.Baseline)
			cfg.Spawn = p
			var res *subthreads.Result
			for i := 0; i < b.N; i++ {
				res, _ = subthreads.RunConfig(benchSpec(subthreads.NewOrder150), cfg)
			}
			reportRun(b, res, ref)
			b.ReportMetric(float64(res.TLS.SubthreadStarts), "spawns")
		})
	}
}

// BenchmarkTelemetry is the instrumentation-overhead guard: the "off" case
// runs with a nil emitter and must stay within noise (<2%) of the pre-
// telemetry baseline — compare with benchstat — because a nil emitter
// reduces every instrumentation site to a pointer test. The other cases
// price real sinks (a bounded ring, the metrics aggregator).
func BenchmarkTelemetry(b *testing.B) {
	cases := []struct {
		name string
		sink func() subthreads.TelemetryEmitter
	}{
		{"off", func() subthreads.TelemetryEmitter { return nil }},
		{"ring", func() subthreads.TelemetryEmitter { return subthreads.NewTelemetryRing(4096) }},
		{"metrics", func() subthreads.TelemetryEmitter { return subthreads.NewTelemetryMetrics() }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			ref := seqReference(subthreads.NewOrder)
			cfg := subthreads.Machine(subthreads.Baseline)
			var res *subthreads.Result
			for i := 0; i < b.N; i++ {
				cfg.Telemetry = c.sink()
				res, _ = subthreads.RunConfig(benchSpec(subthreads.NewOrder), cfg)
			}
			reportRun(b, res, ref)
		})
	}
}

// BenchmarkDependenceSweep regenerates (a diagonal of) the §1 synthetic
// sweep: all-or-nothing vs sub-threads as thread size and dependence count
// grow together.
func BenchmarkDependenceSweep(b *testing.B) {
	cells := []struct {
		size, deps int
	}{{2000, 2}, {10000, 8}, {60000, 24}}
	for _, cell := range cells {
		b.Run(fmt.Sprintf("size=%d/deps=%d", cell.size, cell.deps), func(b *testing.B) {
			params := subthreads.SynthParams{
				Threads: 16, ThreadSize: cell.size, DepLoads: cell.deps, Seed: 42,
			}
			aonCfg := subthreads.DefaultSimConfig()
			aonCfg.SubthreadSpacing = 0
			aonCfg.TLS.SubthreadsPerEpoch = 1
			var ratio float64
			for i := 0; i < b.N; i++ {
				progA, err := subthreads.GenerateSynthetic(params)
				if err != nil {
					b.Fatal(err)
				}
				progS, _ := subthreads.GenerateSynthetic(params)
				aon := subthreads.Simulate(aonCfg, progA)
				sub := subthreads.Simulate(subthreads.DefaultSimConfig(), progS)
				ratio = float64(aon.Cycles) / float64(sub.Cycles)
			}
			b.ReportMetric(ratio, "aon/sub-ratio")
		})
	}
}
