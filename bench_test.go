// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark iteration performs one full experiment (database load,
// trace recording, cycle-level simulation) and reports the paper's metrics —
// speedup over SEQUENTIAL, simulated Mcycles, violations — via ReportMetric,
// so `go test -bench=. -benchmem` reproduces the whole evaluation. The
// cmd/experiments tool renders the same data as figures; these benchmarks are
// the machine-readable form.
package subthreads_test

import (
	"fmt"
	"testing"

	"subthreads"
)

// benchSpec keeps benchmark iterations to roughly a second.
func benchSpec(b subthreads.Benchmark) subthreads.Spec {
	spec := subthreads.DefaultSpec(b)
	spec.Txns = 3
	spec.Warmup = 1
	return spec
}

// seqCycles caches the SEQUENTIAL reference run per benchmark (the
// normalization baseline of every figure).
var seqCycles = map[subthreads.Benchmark]uint64{}

func seqReference(b subthreads.Benchmark) uint64 {
	if c, ok := seqCycles[b]; ok {
		return c
	}
	res, _ := subthreads.Run(benchSpec(b), subthreads.Sequential)
	seqCycles[b] = res.Cycles
	return res.Cycles
}

func reportRun(b *testing.B, res *subthreads.Result, ref uint64) {
	b.ReportMetric(float64(ref)/float64(res.Cycles), "speedup")
	b.ReportMetric(float64(res.Cycles)/1e6, "Mcycles")
	b.ReportMetric(float64(res.TLS.PrimaryViolations+res.TLS.SecondaryViolations), "violations")
}

// BenchmarkTable2 regenerates the Table 2 benchmark statistics: each
// sub-benchmark reports the thread size and coverage of one workload.
func BenchmarkTable2(b *testing.B) {
	for _, bench := range subthreads.Benchmarks() {
		b.Run(bench.String(), func(b *testing.B) {
			var built *subthreads.Built
			for i := 0; i < b.N; i++ {
				built = subthreads.Build(benchSpec(bench), false)
			}
			b.ReportMetric(built.Stats.AvgThreadSize, "instrs/thread")
			b.ReportMetric(built.Stats.Coverage*100, "coverage%")
			b.ReportMetric(built.Stats.ThreadsPerTxn, "threads/txn")
		})
	}
}

// BenchmarkSimulate isolates the simulator hot path: the program is built
// once through the shared build cache and every iteration is one pure
// sim.Run over it — `go test -bench=BenchmarkSimulate -benchmem` is the
// allocation guard for the de-allocated inner loop (allocs/op here is
// allocations per run, excluding the build).
func BenchmarkSimulate(b *testing.B) {
	builder := subthreads.NewBuilder()
	for _, e := range []subthreads.Experiment{subthreads.NoSubthread, subthreads.Baseline} {
		b.Run(e.String(), func(b *testing.B) {
			built := builder.Build(benchSpec(subthreads.NewOrder), false)
			cfg := subthreads.Machine(e)
			b.ReportAllocs()
			b.ResetTimer()
			var res *subthreads.Result
			for i := 0; i < b.N; i++ {
				res = subthreads.Simulate(cfg, built.Program)
			}
			b.ReportMetric(float64(res.EpochCount), "epochs")
		})
	}
}

// BenchmarkSnapshot extends the BenchmarkSimulate alloc guard to the
// checkpoint path. "capture" is a full run that also serializes a forkable
// prefix snapshot (its allocs/op must stay within noise of plain Simulate —
// the capture cost is one buffer serialization amortized over the whole
// run); "restore" is one decode-plus-fork of the captured snapshot followed
// by simulation of the remaining program, the warm-start path of
// cmd/experiments sweeps and tlsd re-runs, with an allocation budget of its
// own (it rebuilds the machine state the plain path builds incrementally).
func BenchmarkSnapshot(b *testing.B) {
	builder := subthreads.NewBuilder()
	built := builder.Build(benchSpec(subthreads.NewOrder), false)
	cfg := subthreads.Machine(subthreads.Baseline)

	b.Run("capture", func(b *testing.B) {
		capCfg := cfg
		capCfg.SnapshotAtPrefix = true
		var snap *subthreads.SimSnapshot
		capCfg.SnapshotSink = func(s *subthreads.SimSnapshot) { snap = s }
		b.ReportAllocs()
		b.ResetTimer()
		var res *subthreads.Result
		for i := 0; i < b.N; i++ {
			res = subthreads.Simulate(capCfg, built.Program)
		}
		b.ReportMetric(float64(res.EpochCount), "epochs")
		b.ReportMetric(float64(len(snap.Encode())), "snapshot-bytes")
	})

	b.Run("restore", func(b *testing.B) {
		capCfg := cfg
		capCfg.SnapshotAtPrefix = true
		var snap *subthreads.SimSnapshot
		capCfg.SnapshotSink = func(s *subthreads.SimSnapshot) { snap = s }
		full := subthreads.Simulate(capCfg, built.Program)
		frame := snap.Encode()
		b.ReportAllocs()
		b.ResetTimer()
		var res *subthreads.Result
		for i := 0; i < b.N; i++ {
			decoded, err := subthreads.DecodeSimSnapshot(frame)
			if err != nil {
				b.Fatal(err)
			}
			res, err = subthreads.Resume(cfg, built.Program, decoded)
			if err != nil {
				b.Fatal(err)
			}
		}
		if res.Cycles != full.Cycles {
			b.Fatalf("restored run diverged: %d cycles vs %d", res.Cycles, full.Cycles)
		}
		b.ReportMetric(float64(res.EpochCount), "epochs")
	})
}

// The enforced form of the snapshot alloc guard. Capturing a checkpoint
// must cost a bounded number of extra allocations per run (one state
// serialization; measured ~20 on top of ~14k), not per epoch — a per-epoch
// regression here means capture instrumentation leaked into the simulation
// loop. Restoring has a budget of its own, expressed per epoch like the
// simulator's steady-state (~416 allocs/epoch): decode + state rebuild +
// the remaining simulation.
const (
	captureAllocOverhead  = 600 // extra allocs per capturing run vs plain
	restoreAllocsPerEpoch = 480 // decode + fork + remaining run, per epoch
)

func TestSnapshotPathStaysWithinAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	builder := subthreads.NewBuilder()
	built := builder.Build(benchSpec(subthreads.NewOrder), false)
	cfg := subthreads.Machine(subthreads.Baseline)
	subthreads.Simulate(cfg, built.Program) // warm the page/metadata pools

	plain := testing.AllocsPerRun(3, func() {
		subthreads.Simulate(cfg, built.Program)
	})

	capCfg := cfg
	capCfg.SnapshotAtPrefix = true
	var snap *subthreads.SimSnapshot
	capCfg.SnapshotSink = func(s *subthreads.SimSnapshot) { snap = s }
	var res *subthreads.Result
	capture := testing.AllocsPerRun(3, func() {
		res = subthreads.Simulate(capCfg, built.Program)
	})
	t.Logf("plain %.0f allocs/run, capturing %.0f (+%.0f, overhead budget %d)",
		plain, capture, capture-plain, captureAllocOverhead)
	if capture > plain+captureAllocOverhead {
		t.Errorf("snapshot capture adds %.0f allocs/run, budget %d", capture-plain, captureAllocOverhead)
	}

	frame := snap.Encode()
	restore := testing.AllocsPerRun(3, func() {
		decoded, err := subthreads.DecodeSimSnapshot(frame)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := subthreads.Resume(cfg, built.Program, decoded); err != nil {
			t.Fatal(err)
		}
	})
	perEpoch := restore / float64(res.EpochCount)
	t.Logf("restore %.0f allocs over %d epochs = %.1f allocs/epoch (budget %d)",
		restore, res.EpochCount, perEpoch, restoreAllocsPerEpoch)
	if perEpoch > restoreAllocsPerEpoch {
		t.Errorf("restore path allocates %.1f/epoch, budget %d", perEpoch, restoreAllocsPerEpoch)
	}
}

// BenchmarkFigure5 regenerates Figure 5: every benchmark crossed with the
// five machine configurations; the speedup metric is the bar height inverse.
func BenchmarkFigure5(b *testing.B) {
	experiments := []subthreads.Experiment{
		subthreads.Sequential,
		subthreads.TLSSeq,
		subthreads.NoSubthread,
		subthreads.Baseline,
		subthreads.NoSpeculation,
	}
	for _, bench := range subthreads.Benchmarks() {
		for _, e := range experiments {
			b.Run(fmt.Sprintf("%s/%s", bench, e), func(b *testing.B) {
				ref := seqReference(bench)
				var res *subthreads.Result
				for i := 0; i < b.N; i++ {
					res, _ = subthreads.Run(benchSpec(bench), e)
				}
				reportRun(b, res, ref)
			})
		}
	}
}

// BenchmarkFigure6 regenerates (a compact grid of) Figure 6: sub-thread
// count x sub-thread size for the five TLS-profitable benchmarks. The full
// grid is available from cmd/experiments -figure6.
func BenchmarkFigure6(b *testing.B) {
	counts := []int{2, 8}
	sizes := []uint64{2500, 5000, 50000}
	for _, bench := range []subthreads.Benchmark{
		subthreads.NewOrder, subthreads.NewOrder150, subthreads.Delivery,
		subthreads.DeliveryOuter, subthreads.StockLevel,
	} {
		for _, n := range counts {
			for _, size := range sizes {
				b.Run(fmt.Sprintf("%s/subthreads=%d/size=%d", bench, n, size), func(b *testing.B) {
					ref := seqReference(bench)
					cfg := subthreads.Machine(subthreads.Baseline)
					cfg.TLS.SubthreadsPerEpoch = n
					cfg.SubthreadSpacing = size
					var res *subthreads.Result
					for i := 0; i < b.N; i++ {
						res, _ = subthreads.RunConfig(benchSpec(bench), cfg)
					}
					reportRun(b, res, ref)
				})
			}
		}
	}
}

// BenchmarkStartTable regenerates the Figure 4 ablation: secondary
// violations with and without the sub-thread start table.
func BenchmarkStartTable(b *testing.B) {
	for _, on := range []bool{true, false} {
		name := "on"
		if !on {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			ref := seqReference(subthreads.NewOrder150)
			cfg := subthreads.Machine(subthreads.Baseline)
			cfg.TLS.StartTable = on
			var res *subthreads.Result
			for i := 0; i < b.N; i++ {
				res, _ = subthreads.RunConfig(benchSpec(subthreads.NewOrder150), cfg)
			}
			reportRun(b, res, ref)
			b.ReportMetric(float64(res.RewoundInstrs), "rewound-instrs")
		})
	}
}

// BenchmarkPredictor regenerates the §2.2 comparison: all-or-nothing TLS, a
// Moshovos-style dependence predictor, and sub-threads.
func BenchmarkPredictor(b *testing.B) {
	for _, e := range []subthreads.Experiment{
		subthreads.NoSubthread, subthreads.PredictorSync, subthreads.Baseline,
	} {
		b.Run(e.String(), func(b *testing.B) {
			ref := seqReference(subthreads.NewOrder)
			var res *subthreads.Result
			for i := 0; i < b.N; i++ {
				res, _ = subthreads.Run(benchSpec(subthreads.NewOrder), e)
			}
			reportRun(b, res, ref)
			b.ReportMetric(float64(res.PredictorSyncs), "syncs")
		})
	}
}

// BenchmarkVictimCache regenerates the §2.1 sweep: speculative victim cache
// capacity vs. overflow squashes on the worst-case workload.
func BenchmarkVictimCache(b *testing.B) {
	for _, entries := range []int{0, 16, 64} {
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			ref := seqReference(subthreads.DeliveryOuter)
			cfg := subthreads.Machine(subthreads.Baseline)
			cfg.TLS.VictimEntries = entries
			var res *subthreads.Result
			for i := 0; i < b.N; i++ {
				res, _ = subthreads.RunConfig(benchSpec(subthreads.DeliveryOuter), cfg)
			}
			reportRun(b, res, ref)
			b.ReportMetric(float64(res.TLS.OverflowSquashes), "overflow-squashes")
		})
	}
}

// BenchmarkTuning regenerates the §3.2 narrative: NEW ORDER speedup at each
// database optimization level.
func BenchmarkTuning(b *testing.B) {
	for lvl := 0; lvl <= 5; lvl++ {
		b.Run(fmt.Sprintf("opt=%d", lvl), func(b *testing.B) {
			ref := seqReference(subthreads.NewOrder)
			spec := benchSpec(subthreads.NewOrder)
			spec.OptLevel = lvl
			var res *subthreads.Result
			for i := 0; i < b.N; i++ {
				res, _ = subthreads.RunConfig(spec, subthreads.Machine(subthreads.Baseline))
			}
			reportRun(b, res, ref)
		})
	}
}

// BenchmarkSpawnPolicy regenerates the §5.1 placement-policy comparison:
// periodic (BASELINE), adaptive sizing, and predictor-guided checkpoints.
func BenchmarkSpawnPolicy(b *testing.B) {
	for _, p := range []subthreads.SpawnPolicy{
		subthreads.SpawnPeriodic, subthreads.SpawnAdaptive, subthreads.SpawnPredictor,
	} {
		b.Run(p.String(), func(b *testing.B) {
			ref := seqReference(subthreads.NewOrder150)
			cfg := subthreads.Machine(subthreads.Baseline)
			cfg.Spawn = p
			var res *subthreads.Result
			for i := 0; i < b.N; i++ {
				res, _ = subthreads.RunConfig(benchSpec(subthreads.NewOrder150), cfg)
			}
			reportRun(b, res, ref)
			b.ReportMetric(float64(res.TLS.SubthreadStarts), "spawns")
		})
	}
}

// BenchmarkTelemetry is the instrumentation-overhead guard: the "off" case
// runs with a nil emitter and must stay within noise (<2%) of the pre-
// telemetry baseline — compare with benchstat — because a nil emitter
// reduces every instrumentation site to a pointer test. The other cases
// price real sinks (a bounded ring, the metrics aggregator).
func BenchmarkTelemetry(b *testing.B) {
	cases := []struct {
		name string
		sink func() subthreads.TelemetryEmitter
	}{
		{"off", func() subthreads.TelemetryEmitter { return nil }},
		{"ring", func() subthreads.TelemetryEmitter { return subthreads.NewTelemetryRing(4096) }},
		{"metrics", func() subthreads.TelemetryEmitter { return subthreads.NewTelemetryMetrics() }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			ref := seqReference(subthreads.NewOrder)
			cfg := subthreads.Machine(subthreads.Baseline)
			var res *subthreads.Result
			for i := 0; i < b.N; i++ {
				cfg.Telemetry = c.sink()
				res, _ = subthreads.RunConfig(benchSpec(subthreads.NewOrder), cfg)
			}
			reportRun(b, res, ref)
		})
	}
}

// BenchmarkDependenceSweep regenerates (a diagonal of) the §1 synthetic
// sweep: all-or-nothing vs sub-threads as thread size and dependence count
// grow together.
func BenchmarkDependenceSweep(b *testing.B) {
	cells := []struct {
		size, deps int
	}{{2000, 2}, {10000, 8}, {60000, 24}}
	for _, cell := range cells {
		b.Run(fmt.Sprintf("size=%d/deps=%d", cell.size, cell.deps), func(b *testing.B) {
			params := subthreads.SynthParams{
				Threads: 16, ThreadSize: cell.size, DepLoads: cell.deps, Seed: 42,
			}
			aonCfg := subthreads.DefaultSimConfig()
			aonCfg.SubthreadSpacing = 0
			aonCfg.TLS.SubthreadsPerEpoch = 1
			var ratio float64
			for i := 0; i < b.N; i++ {
				progA, err := subthreads.GenerateSynthetic(params)
				if err != nil {
					b.Fatal(err)
				}
				progS, _ := subthreads.GenerateSynthetic(params)
				aon := subthreads.Simulate(aonCfg, progA)
				sub := subthreads.Simulate(subthreads.DefaultSimConfig(), progS)
				ratio = float64(aon.Cycles) / float64(sub.Cycles)
			}
			b.ReportMetric(ratio, "aon/sub-ratio")
		})
	}
}
