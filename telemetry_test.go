// Tests of the telemetry subsystem through the public API: determinism of
// the event stream, zero perturbation of the simulated machine, and the
// Chrome trace-event export the acceptance workflow depends on.
package subthreads_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"subthreads"
)

// telemetrySpec is a short unoptimized run that is guaranteed to violate:
// opt level 0 leaves every §3.2 dependence in place.
func telemetrySpec() subthreads.Spec {
	spec := subthreads.DefaultSpec(subthreads.NewOrder)
	spec.Txns = 3
	spec.Warmup = 1
	spec.OptLevel = 0
	return spec
}

// captureRun simulates the spec on the BASELINE machine with a buffer
// emitter attached and returns the result plus the captured events.
func captureRun(t *testing.T) (*subthreads.Result, []subthreads.TelemetryEvent) {
	t.Helper()
	buf := &subthreads.TelemetryBuffer{}
	cfg := subthreads.Machine(subthreads.Baseline)
	cfg.Telemetry = buf
	res, _ := subthreads.RunConfig(telemetrySpec(), cfg)
	return res, buf.Events
}

// TestTelemetryDeterminism: two runs with the same seed and configuration
// must produce byte-identical event streams (ISSUE acceptance: seeded runs
// are reproducible down to the cycle).
func TestTelemetryDeterminism(t *testing.T) {
	_, ev1 := captureRun(t)
	_, ev2 := captureRun(t)

	var b1, b2 bytes.Buffer
	if err := subthreads.EncodeTelemetryJSONL(&b1, ev1); err != nil {
		t.Fatal(err)
	}
	if err := subthreads.EncodeTelemetryJSONL(&b2, ev2); err != nil {
		t.Fatal(err)
	}
	if b1.Len() == 0 {
		t.Fatal("no events captured")
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Errorf("event streams differ between identical runs (%d vs %d bytes)",
			b1.Len(), b2.Len())
	}
}

// TestTelemetryDoesNotPerturb: attaching an emitter must not change what the
// machine simulates — cycle count and breakdown are observation-independent.
func TestTelemetryDoesNotPerturb(t *testing.T) {
	cfg := subthreads.Machine(subthreads.Baseline)
	plain, _ := subthreads.RunConfig(telemetrySpec(), cfg)
	observed, _ := captureRun(t)

	if plain.Cycles != observed.Cycles {
		t.Errorf("cycles changed under observation: %d vs %d", plain.Cycles, observed.Cycles)
	}
	if plain.Breakdown != observed.Breakdown {
		t.Errorf("breakdown changed under observation:\n%v\n%v", plain.Breakdown, observed.Breakdown)
	}
	if plain.TLS != observed.TLS {
		t.Errorf("TLS stats changed under observation:\n%+v\n%+v", plain.TLS, observed.TLS)
	}
}

// TestTelemetryMatchesResult: the aggregated counters must agree with the
// simulator's own statistics for the events both sides count.
func TestTelemetryMatchesResult(t *testing.T) {
	m := subthreads.NewTelemetryMetrics()
	cfg := subthreads.Machine(subthreads.Baseline)
	cfg.Telemetry = m
	res, _ := subthreads.RunConfig(telemetrySpec(), cfg)

	snap := m.Snapshot()
	// Violation events are actual rewinds: the engine deduplicates squash
	// targets per epoch (a deeper rewind subsumes a shallower one), so the
	// event count is bounded by — but can trail — the raw detection
	// counters in Stats.
	detected := res.TLS.PrimaryViolations + res.TLS.SecondaryViolations
	rewinds := snap.Counters["violation-primary"] + snap.Counters["violation-secondary"]
	if rewinds == 0 || rewinds > detected {
		t.Errorf("violation rewind events = %d, want in (0, %d] detections", rewinds, detected)
	}
	if got := snap.Counters["subthread-start"]; got != res.TLS.SubthreadStarts {
		t.Errorf("sub-thread starts: telemetry %d, result %d", got, res.TLS.SubthreadStarts)
	}
	if got := snap.Counters["epoch-commit"]; got != res.TLS.Commits {
		t.Errorf("commits: telemetry %d, result %d", got, res.TLS.Commits)
	}
	if res.TLS.PrimaryViolations > 0 {
		h, ok := snap.Histograms["violation_rewind_instrs"]
		if !ok || h.Count == 0 {
			t.Error("rewind-instrs histogram empty despite violations")
		}
	}
}

// TestChromeTraceExport: the exported timeline must be valid Chrome
// trace-event JSON with per-CPU epoch and sub-thread slices and at least one
// violation instant on the unoptimized workload.
func TestChromeTraceExport(t *testing.T) {
	_, events := captureRun(t)

	var buf bytes.Buffer
	if err := subthreads.WriteChromeTrace(&buf, events, subthreads.ChromeTraceOptions{}); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TID  int     `json:"tid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	var epochSlices, ctxSlices, violations int
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "X" && strings.HasPrefix(ev.Name, "epoch"):
			epochSlices++
		case ev.Ph == "X" && strings.HasPrefix(ev.Name, "ctx"):
			ctxSlices++
		case ev.Ph == "i" && strings.Contains(ev.Name, "violation"):
			violations++
		}
	}
	if epochSlices == 0 {
		t.Error("no epoch slices in trace")
	}
	if ctxSlices == 0 {
		t.Error("no sub-thread context slices in trace")
	}
	if violations == 0 {
		t.Error("no violation instants in trace (opt level 0 should violate)")
	}

	// Determinism of the export itself.
	var buf2 bytes.Buffer
	if err := subthreads.WriteChromeTrace(&buf2, events, subthreads.ChromeTraceOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("trace export is not deterministic")
	}
}

// TestTelemetryRingPublicAPI: the ring sink keeps only the tail of the run.
func TestTelemetryRingPublicAPI(t *testing.T) {
	ring := subthreads.NewTelemetryRing(16)
	cfg := subthreads.Machine(subthreads.Baseline)
	cfg.Telemetry = ring
	subthreads.RunConfig(telemetrySpec(), cfg)

	if ring.Len() != 16 {
		t.Errorf("ring holds %d events, want 16", ring.Len())
	}
	if ring.Dropped == 0 {
		t.Error("expected the run to overflow a 16-entry ring")
	}
	evs := ring.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Cycle < evs[i-1].Cycle {
			t.Fatalf("ring events out of order at %d: %d < %d", i, evs[i].Cycle, evs[i-1].Cycle)
		}
	}
}
