// Package subthreads is a library reproduction of Colohan, Ailamaki,
// Steffan, and Mowry, "Tolerating Dependences Between Large Speculative
// Threads Via Sub-Threads" (ISCA 2006).
//
// It provides, as one coherent system:
//
//   - a cycle-level simulator of a 4-CPU chip multiprocessor with hardware
//     support for thread-level speculation (TLS) over large speculative
//     threads: speculative state buffered in the shared L2, line-granularity
//     load tracking, word-granularity store tracking, aggressive update
//     propagation through write-through L1s, and a speculative victim cache;
//   - the paper's contribution, sub-threads: periodic lightweight
//     checkpoints inside each speculative thread, so a dependence violation
//     rewinds only to the sub-thread containing the violated load, with the
//     sub-thread start table making secondary violations selective;
//   - the hardware dependence profiler of §3.1 (exposed load table plus a
//     failed-cycle-ranked load/store PC pair list);
//   - a from-scratch BerkeleyDB-like storage engine (B+-trees, buffer pool,
//     latches, lock table, write-ahead log) that executes the five TPC-C
//     transactions and records their memory traces, with the §3.2 tuning
//     optimizations as switchable flags.
//
// The exported surface below aliases the internal packages so downstream
// users get one import; the examples/ directory shows typical use, and
// cmd/experiments regenerates every table and figure of the paper.
package subthreads

import (
	"io"

	"subthreads/internal/db"
	"subthreads/internal/isa"
	"subthreads/internal/mem"
	"subthreads/internal/report"
	"subthreads/internal/sim"
	"subthreads/internal/synth"
	"subthreads/internal/telemetry"
	"subthreads/internal/tpcc"
	"subthreads/internal/trace"
	"subthreads/internal/version"
	"subthreads/internal/workload"
)

// VersionInfo is the build identity of the running binary: module version,
// VCS revision, and toolchain.
type VersionInfo = version.Info

// Version reports the module version and VCS revision the Go toolchain
// embedded in this binary (runtime/debug.ReadBuildInfo). All five commands
// surface it via -version, and the serving daemon via GET /healthz.
func Version() VersionInfo { return version.Get() }

// Trace-construction types, for building custom speculative threads.
type (
	// Trace is a recorded instruction stream (one speculative thread).
	Trace = trace.Trace
	// TraceBuilder records loads, stores, compute, and branches.
	TraceBuilder = trace.Builder
	// Addr is a simulated physical address.
	Addr = mem.Addr
	// PC is a synthetic program counter for instrumentation sites.
	PC = isa.PC
)

// NewTraceBuilder returns an empty trace builder.
func NewTraceBuilder() *TraceBuilder { return trace.NewBuilder() }

// SynthParams describes a synthetic speculative-thread workload (thread
// count, size, and cross-thread dependence density).
type SynthParams = synth.Params

// GenerateSynthetic builds a synthetic program for dependence-density
// studies and stress testing.
func GenerateSynthetic(p SynthParams) (*Program, error) { return synth.Generate(p) }

// Simulator types.
type (
	// SpawnPolicy selects where sub-thread checkpoints are placed (§5.1).
	SpawnPolicy = sim.SpawnPolicy
	// SimConfig assembles a full machine (CPUs, memory hierarchy, TLS
	// hardware, sub-thread policy).
	SimConfig = sim.Config
	// Result is a run's full measurement.
	Result = sim.Result
	// Program is an ordered list of schedulable units.
	Program = sim.Program
	// Unit is one speculative thread or serial (barrier) region.
	Unit = sim.Unit
	// Breakdown distributes CPU-cycles across the Figure 5 categories.
	Breakdown = sim.Breakdown
	// SimSnapshot is a whole-machine checkpoint captured at a cycle
	// boundary; Resume continues or forks a run from one.
	SimSnapshot = sim.Snapshot
)

// Workload types.
type (
	// Spec describes one benchmark run.
	Spec = workload.Spec
	// Experiment names a Figure 5 machine/software configuration.
	Experiment = workload.Experiment
	// Built is a ready-to-simulate program plus provenance.
	Built = workload.Built
	// Builder is a concurrency-safe build cache: it memoizes Built
	// programs so sweeps replaying one binary against many machines pay
	// for a single database load + trace recording.
	Builder = workload.Builder
	// Benchmark identifies one of the seven workload variants.
	Benchmark = tpcc.Benchmark
	// Scale sizes the single-warehouse TPC-C dataset.
	Scale = tpcc.Scale
)

// Storage-engine types for building custom workloads.
type (
	// DBConfig parameterizes the storage engine.
	DBConfig = db.Config
	// DBEnv is one database environment.
	DBEnv = db.Env
	// OptFlags selects the §3.2 tuning optimizations.
	OptFlags = db.OptFlags
)

// Sub-thread placement policies (§5.1).
const (
	SpawnPeriodic  = sim.SpawnPeriodic
	SpawnAdaptive  = sim.SpawnAdaptive
	SpawnPredictor = sim.SpawnPredictor
)

// The Figure 5 experiments.
const (
	Sequential    = workload.Sequential
	TLSSeq        = workload.TLSSeq
	NoSubthread   = workload.NoSubthread
	Baseline      = workload.Baseline
	NoSpeculation = workload.NoSpeculation
	PredictorSync = workload.PredictorSync
)

// The seven benchmarks.
const (
	NewOrder      = tpcc.NewOrder
	NewOrder150   = tpcc.NewOrder150
	Delivery      = tpcc.Delivery
	DeliveryOuter = tpcc.DeliveryOuter
	StockLevel    = tpcc.StockLevel
	Payment       = tpcc.Payment
	OrderStatus   = tpcc.OrderStatus
)

// Telemetry types: cycle-stamped protocol-event tracing and metrics.
// Attach an emitter via SimConfig.Telemetry; a nil emitter disables
// instrumentation entirely.
type (
	// TelemetryEvent is one cycle-stamped protocol event.
	TelemetryEvent = telemetry.Event
	// TelemetryEmitter receives events during a run.
	TelemetryEmitter = telemetry.Emitter
	// TelemetryBuffer captures every event in memory.
	TelemetryBuffer = telemetry.Buffer
	// TelemetryRing keeps only the most recent events.
	TelemetryRing = telemetry.Ring
	// TelemetryFanout retains a run's stream and fans it out to concurrent
	// subscribers (the sink behind tlsd's live SSE event streams).
	TelemetryFanout = telemetry.Fanout
	// TelemetryMetrics aggregates events into counters and histograms.
	TelemetryMetrics = telemetry.Metrics
	// ChromeTraceOptions configures the Perfetto timeline exporter.
	ChromeTraceOptions = telemetry.TraceOptions
	// ResultJSON is the machine-readable form of a Result.
	ResultJSON = report.ResultJSON
)

// NewTelemetryRing returns a ring sink holding the last n events.
func NewTelemetryRing(n int) *TelemetryRing { return telemetry.NewRing(n) }

// NewTelemetryFanout returns an empty, open fan-out sink.
func NewTelemetryFanout() *TelemetryFanout { return telemetry.NewFanout() }

// NewTelemetryMetrics returns an empty metrics aggregator.
func NewTelemetryMetrics() *TelemetryMetrics { return telemetry.NewMetrics() }

// TelemetryMulti fans events out to several sinks (nils are skipped).
func TelemetryMulti(sinks ...TelemetryEmitter) TelemetryEmitter {
	return telemetry.Multi(sinks...)
}

// WriteChromeTrace renders captured events as a Chrome trace-event timeline
// loadable in ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, events []TelemetryEvent, opt ChromeTraceOptions) error {
	return telemetry.WriteChromeTrace(w, events, opt)
}

// EncodeTelemetryJSONL writes events as one JSON object per line.
func EncodeTelemetryJSONL(w io.Writer, events []TelemetryEvent) error {
	return telemetry.EncodeJSONL(w, events)
}

// WriteResultJSON encodes a run's measurement as indented JSON.
func WriteResultJSON(w io.Writer, r *Result) error { return report.WriteJSON(w, r) }

// DefaultSpec returns a benchmark spec sized for minutes-long suites.
func DefaultSpec(b Benchmark) Spec { return workload.DefaultSpec(b) }

// DefaultSimConfig returns the paper's BASELINE machine (Table 1: 4 CPUs,
// 8 sub-threads per thread, 5000 speculative instructions per sub-thread).
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// Machine returns the simulator configuration for a Figure 5 experiment.
func Machine(e Experiment) SimConfig { return workload.Machine(e) }

// Run builds the program variant an experiment needs and simulates it.
func Run(spec Spec, e Experiment) (*Result, *Built) { return workload.Run(spec, e) }

// RunConfig simulates the TLS-transformed program on a custom machine.
func RunConfig(spec Spec, cfg SimConfig) (*Result, *Built) { return workload.RunConfig(spec, cfg) }

// Build loads a fresh database and records a benchmark's transaction stream
// without simulating it.
func Build(spec Spec, sequential bool) *Built { return workload.Build(spec, sequential) }

// NewBuilder returns an empty build cache. A Built program is read-only
// under Simulate, so one cached program can back many concurrent machines.
func NewBuilder() *Builder { return workload.NewBuilder() }

// Simulate runs an arbitrary program (e.g. hand-built synthetic units) on a
// machine.
func Simulate(cfg SimConfig, prog *Program) *Result { return sim.Run(cfg, prog) }

// Resume continues (or, for a forkable prefix checkpoint, forks) a run from
// a machine snapshot captured via SimConfig.SnapshotAtCycle/SnapshotAtPrefix.
// The resumed run is byte-identical to the uninterrupted one.
func Resume(cfg SimConfig, prog *Program, snap *SimSnapshot) (*Result, error) {
	return sim.ResumeE(cfg, prog, snap)
}

// DecodeSimSnapshot parses a snapshot previously serialized with Encode.
func DecodeSimSnapshot(data []byte) (*SimSnapshot, error) { return sim.DecodeSnapshot(data) }

// Benchmarks returns the benchmarks in the paper's presentation order.
func Benchmarks() []Benchmark { return tpcc.All() }

// DefaultScale is the scaled-down dataset; PaperScale the full one.
func DefaultScale() Scale { return tpcc.DefaultScale() }

// PaperScale returns the full single-warehouse TPC-C cardinalities.
func PaperScale() Scale { return tpcc.PaperScale() }
